(* Tests for the snapshot-isolation engine: writesets, the versioned store,
   locks, ordered announcement and the full database. *)

open Sim
open Mvcc

let k table row = Key.make ~table ~row
let vi n = Value.int n
let upd n = Writeset.Update (vi n)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let value_opt : Value.t option Alcotest.testable =
  Alcotest.testable
    (Fmt.option Value.pp)
    (fun a b ->
      match (a, b) with
      | None, None -> true
      | Some x, Some y -> Value.equal x y
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Writeset *)

let test_writeset_basics () =
  let ws = Writeset.of_list [ (k "t" "a", upd 1); (k "t" "b", upd 2) ] in
  check_int "cardinal" 2 (Writeset.cardinal ws);
  check_bool "mem" true (Writeset.mem ws (k "t" "a"));
  check_bool "not mem" false (Writeset.mem ws (k "t" "c"));
  check_bool "empty" true (Writeset.is_empty Writeset.empty);
  check_bool "non-empty" false (Writeset.is_empty ws)

let test_writeset_supersede () =
  let ws = Writeset.of_list [ (k "t" "a", upd 1); (k "t" "b", upd 2); (k "t" "a", upd 9) ] in
  check_int "no duplicate entry" 2 (Writeset.cardinal ws);
  match Writeset.entries ws with
  | [ e1; e2 ] ->
      check_bool "order preserved" true (Key.equal e1.key (k "t" "a"));
      (match e1.op with
      | Writeset.Update v -> check_int "latest op wins" 9 (Value.as_int v)
      | _ -> Alcotest.fail "expected update");
      check_bool "second entry" true (Key.equal e2.key (k "t" "b"))
  | _ -> Alcotest.fail "expected two entries"

let test_writeset_intersects () =
  let a = Writeset.of_list [ (k "t" "x", upd 1); (k "t" "y", upd 2) ] in
  let b = Writeset.of_list [ (k "t" "y", upd 3); (k "t" "z", upd 4) ] in
  let c = Writeset.of_list [ (k "t" "z", upd 5) ] in
  check_bool "a/b intersect" true (Writeset.intersects a b);
  check_bool "b/a symmetric" true (Writeset.intersects b a);
  check_bool "a/c disjoint" false (Writeset.intersects a c);
  check_bool "empty never intersects" false (Writeset.intersects a Writeset.empty);
  Alcotest.(check (list string))
    "inter_keys" [ "t/y" ]
    (List.map Key.to_string (Writeset.inter_keys a b))

let test_writeset_union_later_wins () =
  let a = Writeset.of_list [ (k "t" "x", upd 1); (k "t" "y", upd 2) ] in
  let b = Writeset.of_list [ (k "t" "y", upd 9); (k "t" "z", Writeset.Delete) ] in
  let u = Writeset.union a b in
  check_int "union size" 3 (Writeset.cardinal u);
  let find key =
    List.find (fun e -> Key.equal e.Writeset.key key) (Writeset.entries u)
  in
  (match (find (k "t" "y")).op with
  | Writeset.Update v -> check_int "later wins" 9 (Value.as_int v)
  | _ -> Alcotest.fail "expected update");
  match (find (k "t" "z")).op with
  | Writeset.Delete -> ()
  | _ -> Alcotest.fail "expected delete"

let test_writeset_encoded_bytes () =
  let ws = Writeset.singleton (k "accounts" "42") (upd 7) in
  (* 8 header + (8+2+2) key + 1 op + 8 int *)
  check_int "size" 29 (Writeset.encoded_bytes ws);
  check_int "empty size" 8 (Writeset.encoded_bytes Writeset.empty)

let test_writeset_delta_fold () =
  let ws =
    Writeset.of_list
      [
        (k "t" "sum", Writeset.Add 2); (k "t" "sum", Writeset.Add 3);
        (k "t" "img", upd 10); (k "t" "img", Writeset.Add 5);
        (k "t" "pin", Writeset.Add 9); (k "t" "pin", upd 1);
        (k "t" "dead", Writeset.Delete); (k "t" "dead", Writeset.Add 4);
        (k "t" "ins", Writeset.Insert (vi 7)); (k "t" "ins", Writeset.Add 1);
      ]
  in
  let op key =
    match Writeset.find_op ws key with
    | Some op -> op
    | None -> Alcotest.fail ("missing op for " ^ Key.to_string key)
  in
  (match op (k "t" "sum") with
  | Writeset.Add 5 -> ()
  | _ -> Alcotest.fail "delta after delta must sum");
  (match op (k "t" "img") with
  | Writeset.Update v -> check_int "delta folds onto image" 15 (Value.as_int v)
  | _ -> Alcotest.fail "expected update for img");
  (match op (k "t" "pin") with
  | Writeset.Update v -> check_int "image replaces delta" 1 (Value.as_int v)
  | _ -> Alcotest.fail "expected update for pin");
  (match op (k "t" "dead") with
  | Writeset.Update v ->
      check_int "delete then delta re-creates from zero" 4 (Value.as_int v)
  | _ -> Alcotest.fail "expected update for dead");
  (match op (k "t" "ins") with
  | Writeset.Insert v -> check_int "delta folds onto insert" 8 (Value.as_int v)
  | _ -> Alcotest.fail "expected insert for ins");
  check_bool "mixed set is not all deltas" false (Writeset.all_deltas ws);
  check_bool "pure delta set is" true
    (Writeset.all_deltas (Writeset.singleton (k "t" "sum") (Writeset.Add 1)));
  check_bool "empty is vacuously all deltas" true (Writeset.all_deltas Writeset.empty);
  check_bool "Add is a delta" true (Writeset.op_is_delta (Writeset.Add 1));
  check_bool "Update is not" false (Writeset.op_is_delta (upd 1))

let test_writeset_delta_union () =
  let a = Writeset.of_list [ (k "t" "x", upd 10); (k "t" "y", Writeset.Add 2) ] in
  let b =
    Writeset.of_list
      [ (k "t" "x", Writeset.Add 5); (k "t" "y", Writeset.Add 3); (k "t" "z", upd 1) ]
  in
  let u = Writeset.union a b in
  check_int "union size" 3 (Writeset.cardinal u);
  (match Writeset.find_op u (k "t" "x") with
  | Some (Writeset.Update v) ->
      check_int "later delta folds onto earlier image" 15 (Value.as_int v)
  | _ -> Alcotest.fail "expected update for x");
  match Writeset.find_op u (k "t" "y") with
  | Some (Writeset.Add 5) -> ()
  | _ -> Alcotest.fail "deltas must sum across union"

let test_writeset_delta_encoded_bytes () =
  (* A delta entry is 1 tag + 8 increment on the wire, same as a final
     integer image — and the legacy blind-write sizes (the paper's
     54/158/275 B workload averages) are untouched by the new op. *)
  check_int "delta entry size" 29
    (Writeset.encoded_bytes
       (Writeset.singleton (k "accounts" "42") (Writeset.Add 7)));
  check_int "blind size unchanged" 29
    (Writeset.encoded_bytes (Writeset.singleton (k "accounts" "42") (upd 7)));
  check_int "image + delta on one key stays one entry" 29
    (Writeset.encoded_bytes
       (Writeset.of_list
          [ (k "accounts" "42", upd 1); (k "accounts" "42", Writeset.Add 6) ]))

let writeset_gen =
  let open QCheck in
  let key_gen = Gen.map (fun i -> k "t" (string_of_int i)) (Gen.int_bound 20) in
  let op_gen =
    Gen.oneof
      [
        Gen.map (fun n -> Writeset.Insert (vi n)) Gen.small_int;
        Gen.map (fun n -> upd n) Gen.small_int;
        Gen.return Writeset.Delete;
        Gen.map (fun n -> Writeset.Add n) Gen.small_int;
      ]
  in
  make
    ~print:(fun ws -> Format.asprintf "%a" Writeset.pp ws)
    Gen.(map Writeset.of_list (small_list (pair key_gen op_gen)))

let prop_intersects_symmetric =
  QCheck.Test.make ~name:"writeset intersection is symmetric" ~count:200
    (QCheck.pair writeset_gen writeset_gen) (fun (a, b) ->
      Writeset.intersects a b = Writeset.intersects b a)

let prop_intersects_iff_inter_keys =
  QCheck.Test.make ~name:"intersects agrees with inter_keys" ~count:200
    (QCheck.pair writeset_gen writeset_gen) (fun (a, b) ->
      Writeset.intersects a b = (Writeset.inter_keys a b <> []))

let prop_union_keys =
  QCheck.Test.make ~name:"union covers both key sets" ~count:200
    (QCheck.pair writeset_gen writeset_gen) (fun (a, b) ->
      let u = Writeset.union a b in
      List.for_all (Writeset.mem u) (Writeset.keys a)
      && List.for_all (Writeset.mem u) (Writeset.keys b))

(* ------------------------------------------------------------------ *)
(* Store *)

let test_store_snapshot_reads () =
  let s = Store.create () in
  Store.preload s (k "t" "a") (vi 0);
  Store.install s ~version:3 (Writeset.singleton (k "t" "a") (upd 30));
  Store.install s ~version:7 (Writeset.singleton (k "t" "a") (upd 70));
  Alcotest.check value_opt "at 0" (Some (vi 0)) (Store.read s ~at:0 (k "t" "a"));
  Alcotest.check value_opt "at 2" (Some (vi 0)) (Store.read s ~at:2 (k "t" "a"));
  Alcotest.check value_opt "at 3" (Some (vi 30)) (Store.read s ~at:3 (k "t" "a"));
  Alcotest.check value_opt "at 6" (Some (vi 30)) (Store.read s ~at:6 (k "t" "a"));
  Alcotest.check value_opt "at 7" (Some (vi 70)) (Store.read s ~at:7 (k "t" "a"));
  Alcotest.check value_opt "latest" (Some (vi 70)) (Store.read_latest s (k "t" "a"));
  check_int "version" 7 (Store.current_version s)

let test_store_tombstones () =
  let s = Store.create () in
  Store.install s ~version:1 (Writeset.singleton (k "t" "a") (Writeset.Insert (vi 5)));
  Store.install s ~version:2 (Writeset.singleton (k "t" "a") Writeset.Delete);
  Alcotest.check value_opt "visible at 1" (Some (vi 5)) (Store.read s ~at:1 (k "t" "a"));
  Alcotest.check value_opt "deleted at 2" None (Store.read s ~at:2 (k "t" "a"));
  Alcotest.check value_opt "missing row" None (Store.read s ~at:2 (k "t" "zz"))

let test_store_version_monotonic () =
  let s = Store.create () in
  Store.install s ~version:5 (Writeset.singleton (k "t" "a") (upd 1));
  (match Store.install s ~version:5 (Writeset.singleton (k "t" "b") (upd 2)) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "must reject non-increasing version");
  check_int "latest_writer" 5 (Store.latest_writer s (k "t" "a"));
  check_int "latest_writer unknown" 0 (Store.latest_writer s (k "t" "zz"))

let test_store_sparse_versions () =
  (* A replica jumps 0 -> 3 -> 9 when applying batched remote writesets. *)
  let s = Store.create () in
  Store.install s ~version:3 (Writeset.singleton (k "t" "a") (upd 3));
  Store.install s ~version:9 (Writeset.singleton (k "t" "b") (upd 9));
  check_int "version 9" 9 (Store.current_version s);
  Alcotest.check value_opt "a visible at 5" (Some (vi 3)) (Store.read s ~at:5 (k "t" "a"));
  Alcotest.check value_opt "b invisible at 5" None (Store.read s ~at:5 (k "t" "b"))

let test_store_copy_flattens () =
  let s = Store.create () in
  Store.install s ~version:1 (Writeset.singleton (k "t" "a") (upd 1));
  Store.install s ~version:2 (Writeset.singleton (k "t" "a") (upd 2));
  let c = Store.copy s in
  check_int "copy version" 2 (Store.current_version c);
  check_int "copy flattened" 1 (Store.version_records c);
  Alcotest.check value_opt "copy value" (Some (vi 2)) (Store.read_latest c (k "t" "a"));
  (* the copy is independent *)
  Store.install s ~version:3 (Writeset.singleton (k "t" "a") (upd 3));
  Alcotest.check value_opt "copy unaffected" (Some (vi 2)) (Store.read_latest c (k "t" "a"))

let test_store_gc () =
  let s = Store.create () in
  for v = 1 to 10 do
    Store.install s ~version:v (Writeset.singleton (k "t" "a") (upd v))
  done;
  check_int "ten records" 10 (Store.version_records s);
  Store.gc s ~keep_after:8;
  check_int "pruned to recent + anchor" 3 (Store.version_records s);
  Alcotest.check value_opt "read at 9 still works" (Some (vi 9))
    (Store.read s ~at:9 (k "t" "a"));
  Alcotest.check value_opt "read at 8 sees anchor" (Some (vi 8))
    (Store.read s ~at:8 (k "t" "a"))

let test_store_delta_reads () =
  let s = Store.create () in
  Store.preload s (k "t" "a") (vi 10);
  Store.install s ~version:1 (Writeset.singleton (k "t" "a") (Writeset.Add 5));
  Store.install s ~version:2 (Writeset.singleton (k "t" "a") (Writeset.Add 7));
  Alcotest.check value_opt "base" (Some (vi 10)) (Store.read s ~at:0 (k "t" "a"));
  Alcotest.check value_opt "one delta" (Some (vi 15)) (Store.read s ~at:1 (k "t" "a"));
  Alcotest.check value_opt "two deltas" (Some (vi 22)) (Store.read s ~at:2 (k "t" "a"));
  check_int "latest_writer sees deltas" 2 (Store.latest_writer s (k "t" "a"));
  check_int "latest_blind_writer skips them" 0 (Store.latest_blind_writer s (k "t" "a"));
  Store.install s ~version:3 (Writeset.singleton (k "t" "a") (upd 100));
  Store.install s ~version:4 (Writeset.singleton (k "t" "a") (Writeset.Add 1));
  Alcotest.check value_opt "delta over the new image" (Some (vi 101))
    (Store.read s ~at:4 (k "t" "a"));
  check_int "blind writer found" 3 (Store.latest_blind_writer s (k "t" "a"));
  (* a delta with no image below folds from a zero base *)
  Store.install s ~version:5 (Writeset.singleton (k "t" "fresh") (Writeset.Add 3));
  Alcotest.check value_opt "zero base" (Some (vi 3)) (Store.read s ~at:5 (k "t" "fresh"))

let test_store_delta_out_of_order_install () =
  (* Parallel apply slots deltas into the chains in worker-finish order; the
     symbolic representation makes the chain — and every snapshot read —
     identical whichever order they land in. *)
  let build order =
    let s = Store.create () in
    Store.install s ~version:3 (Writeset.singleton (k "t" "a") (upd 10));
    List.iter
      (fun (v, d) ->
        Store.install_at s ~version:v (Writeset.singleton (k "t" "a") (Writeset.Add d)))
      order;
    Store.force_version s 5;
    s
  in
  let check_reads name s =
    Alcotest.check value_opt (name ^ ": at 3") (Some (vi 10)) (Store.read s ~at:3 (k "t" "a"));
    Alcotest.check value_opt (name ^ ": at 4") (Some (vi 12)) (Store.read s ~at:4 (k "t" "a"));
    Alcotest.check value_opt (name ^ ": at 5") (Some (vi 15)) (Store.read s ~at:5 (k "t" "a"))
  in
  check_reads "in order" (build [ (4, 2); (5, 3) ]);
  check_reads "out of order" (build [ (5, 3); (4, 2) ])

let test_store_gc_materializes_delta_base () =
  let s = Store.create () in
  Store.install s ~version:1 (Writeset.singleton (k "t" "a") (upd 100));
  for v = 2 to 6 do
    Store.install s ~version:v (Writeset.singleton (k "t" "a") (Writeset.Add 1))
  done;
  Store.gc s ~keep_after:4;
  check_int "pruned to recent + anchor" 3 (Store.version_records s);
  (* the boundary entry was materialized so the surviving deltas keep a base *)
  Alcotest.check value_opt "anchor folds the dropped run" (Some (vi 103))
    (Store.read s ~at:4 (k "t" "a"));
  Alcotest.check value_opt "at 5" (Some (vi 104)) (Store.read s ~at:5 (k "t" "a"));
  Alcotest.check value_opt "at 6" (Some (vi 105)) (Store.read s ~at:6 (k "t" "a"))

let test_store_copy_materializes_deltas () =
  let s = Store.create () in
  Store.install s ~version:1 (Writeset.singleton (k "t" "a") (upd 100));
  Store.install s ~version:2 (Writeset.singleton (k "t" "a") (Writeset.Add 5));
  let c = Store.copy s in
  check_int "flattened" 1 (Store.version_records c);
  Alcotest.check value_opt "copy folded the delta" (Some (vi 105))
    (Store.read_latest c (k "t" "a"));
  Store.install s ~version:3 (Writeset.singleton (k "t" "a") (Writeset.Add 1));
  Alcotest.check value_opt "copy isolated" (Some (vi 105)) (Store.read_latest c (k "t" "a"))

let test_store_gc_preserves_tombstones () =
  (* Regression: the boundary entry gc materialises must keep a delete a
     delete. A value folded over a tombstone would resurrect the row. *)
  let s = Store.create () in
  Store.install s ~version:1 (Writeset.singleton (k "t" "a") (upd 1));
  Store.install s ~version:2 (Writeset.singleton (k "t" "a") Writeset.Delete);
  Store.install s ~version:3 (Writeset.singleton (k "t" "a") (Writeset.Add 4));
  Store.gc s ~keep_after:2;
  Alcotest.check value_opt "deleted at the floor" None (Store.read s ~at:2 (k "t" "a"));
  Alcotest.check value_opt "delta folds from the deletion" (Some (vi 4))
    (Store.read s ~at:3 (k "t" "a"));
  Alcotest.check value_opt "latest agrees" (Some (vi 4))
    (Store.read_latest s (k "t" "a"));
  (* A row whose entire surviving history is a below-floor tombstone is
     dropped outright — it must read as absent, not as a stale value. *)
  Store.install s ~version:4 (Writeset.singleton (k "t" "b") (upd 9));
  Store.install s ~version:5 (Writeset.singleton (k "t" "b") Writeset.Delete);
  let rows_before = Store.row_count s in
  Store.gc s ~keep_after:5;
  check_int "tombstoned row removed" (rows_before - 1) (Store.row_count s);
  Alcotest.check value_opt "removed row reads as absent" None
    (Store.read_latest s (k "t" "b"))

let test_store_copy_preserves_tombstones () =
  (* Same regression through the dump path: a copy flattens each chain to
     one version, and the flatten must not turn delete-then-delta history
     into a live pre-delete value. *)
  let s = Store.create () in
  Store.install s ~version:1 (Writeset.singleton (k "t" "a") (upd 50));
  Store.install s ~version:2 (Writeset.singleton (k "t" "a") Writeset.Delete);
  Store.install s ~version:3 (Writeset.singleton (k "t" "b") (upd 7));
  let c = Store.copy s in
  Alcotest.check value_opt "deleted row stays deleted in the copy" None
    (Store.read_latest c (k "t" "a"));
  Alcotest.check value_opt "live row copied" (Some (vi 7))
    (Store.read_latest c (k "t" "b"));
  (* delete-then-delta: the delta must fold from the deletion (zero base),
     not from the pre-delete image *)
  Store.install s ~version:4 (Writeset.singleton (k "t" "a") (Writeset.Add 4));
  let c2 = Store.copy s in
  Alcotest.check value_opt "delta over tombstone folds from zero"
    (Some (vi 4))
    (Store.read_latest c2 (k "t" "a"))

(* ------------------------------------------------------------------ *)
(* Locks *)

let test_locks_grant_and_reentry () =
  let l = Locks.create () in
  (match Locks.acquire l 1 (k "t" "a") with
  | Locks.Granted -> ()
  | _ -> Alcotest.fail "fresh lock should be granted");
  (match Locks.acquire l 1 (k "t" "a") with
  | Locks.Granted -> ()
  | _ -> Alcotest.fail "re-entrant acquire");
  check_bool "holder" true (Locks.holder l (k "t" "a") = Some 1)

let test_locks_block_and_handoff () =
  let l = Locks.create () in
  ignore (Locks.acquire l 1 (k "t" "a"));
  (match Locks.acquire l 2 (k "t" "a") with
  | Locks.Would_block h -> check_int "holder is 1" 1 h
  | _ -> Alcotest.fail "expected Would_block");
  Locks.enqueue l 2 (k "t" "a");
  (match Locks.acquire l 3 (k "t" "a") with
  | Locks.Would_block _ -> ()
  | _ -> Alcotest.fail "expected Would_block");
  Locks.enqueue l 3 (k "t" "a");
  let grants = Locks.release_all l 1 in
  (match grants with
  | [ (key, 2) ] -> check_bool "handed to first waiter" true (Key.equal key (k "t" "a"))
  | _ -> Alcotest.fail "expected handoff to tx 2");
  check_bool "new holder" true (Locks.holder l (k "t" "a") = Some 2)

let test_locks_deadlock_detection () =
  let l = Locks.create () in
  ignore (Locks.acquire l 1 (k "t" "a"));
  ignore (Locks.acquire l 2 (k "t" "b"));
  (match Locks.acquire l 2 (k "t" "a") with
  | Locks.Would_block 1 -> Locks.enqueue l 2 (k "t" "a")
  | _ -> Alcotest.fail "expected block on 1");
  (* 1 -> b (held by 2), 2 -> a (held by 1): cycle *)
  match Locks.acquire l 1 (k "t" "b") with
  | Locks.Deadlock cycle ->
      check_bool "cycle mentions both" true (List.mem 1 cycle && List.mem 2 cycle)
  | _ -> Alcotest.fail "expected deadlock"

let test_locks_no_false_deadlock () =
  let l = Locks.create () in
  ignore (Locks.acquire l 1 (k "t" "a"));
  ignore (Locks.acquire l 2 (k "t" "b"));
  (match Locks.acquire l 2 (k "t" "a") with
  | Locks.Would_block _ -> Locks.enqueue l 2 (k "t" "a")
  | _ -> Alcotest.fail "expected block");
  (* 3 waits on a chain, no cycle *)
  match Locks.acquire l 3 (k "t" "b") with
  | Locks.Would_block 2 -> ()
  | _ -> Alcotest.fail "expected plain block"

let test_locks_cancel_wait () =
  let l = Locks.create () in
  ignore (Locks.acquire l 1 (k "t" "a"));
  (match Locks.acquire l 2 (k "t" "a") with
  | Locks.Would_block _ -> Locks.enqueue l 2 (k "t" "a")
  | _ -> Alcotest.fail "expected block");
  Locks.cancel_wait l 2 (k "t" "a");
  let grants = Locks.release_all l 1 in
  check_bool "no grant to cancelled waiter" true (grants = []);
  check_bool "lock free" true (Locks.holder l (k "t" "a") = None)

let test_locks_release_frees () =
  let l = Locks.create () in
  ignore (Locks.acquire l 1 (k "t" "a"));
  ignore (Locks.acquire l 1 (k "t" "b"));
  Alcotest.(check int) "held count" 2 (List.length (Locks.held_by l 1));
  ignore (Locks.release_all l 1);
  check_int "no locks" 0 (Locks.lock_count l);
  match Locks.acquire l 2 (k "t" "a") with
  | Locks.Granted -> ()
  | _ -> Alcotest.fail "freed lock should grant"

(* ------------------------------------------------------------------ *)
(* Commit order *)

let test_commit_order_sequencing () =
  let e = Engine.create () in
  let co = Commit_order.create e () in
  check_int "alloc 1" 1 (Commit_order.next_seq co);
  check_int "alloc 2" 2 (Commit_order.next_seq co);
  let log = ref [] in
  let committer seq delay =
    ignore
      (Engine.spawn e (fun () ->
           Engine.sleep e (Time.us delay);
           Commit_order.wait_turn co seq;
           Commit_order.announce co seq;
           log := seq :: !log))
  in
  (* seq 2 is ready long before seq 1; announcement must still be 1, 2 *)
  committer 2 10;
  committer 1 500;
  Engine.run e;
  Alcotest.(check (list int)) "announce order" [ 1; 2 ] (List.rev !log);
  check_int "announced" 2 (Commit_order.announced co)

let test_commit_order_abuse_blocks () =
  (* COMMIT 9 without COMMIT 1..8: blocks forever (paper 5.2). *)
  let e = Engine.create () in
  let co = Commit_order.create e () in
  let reached = ref false in
  let _ =
    Engine.spawn e (fun () ->
        Commit_order.wait_turn co 9;
        reached := true)
  in
  Engine.run ~until:(Time.sec 10) e;
  check_bool "still blocked" false !reached;
  check_int "waiting" 1 (Commit_order.waiting co)

let test_commit_order_wrong_announce () =
  let e = Engine.create () in
  let co = Commit_order.create e () in
  match Commit_order.announce co 3 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected rejection of out-of-order announce"

let test_commit_order_complete_out_of_order () =
  let e = Engine.create () in
  let co = Commit_order.create e () in
  for _ = 1 to 3 do
    ignore (Commit_order.next_seq co)
  done;
  (* 3 and 2 finish first; the announced prefix stays closed at 0. *)
  Commit_order.complete co 3;
  Commit_order.complete co 2;
  check_int "prefix held back" 0 (Commit_order.announced co);
  (* 1 closes the run: the prefix advances through 1, 2 and 3 at once. *)
  Commit_order.complete co 1;
  check_int "contiguous run published" 3 (Commit_order.announced co);
  (* duplicate completions of an already-published number are ignored *)
  Commit_order.complete co 2;
  check_int "duplicate ignored" 3 (Commit_order.announced co)

let test_commit_order_complete_releases_waiters () =
  let e = Engine.create () in
  let co = Commit_order.create e () in
  let reached = ref false in
  ignore
    (Engine.spawn e (fun () ->
         Commit_order.wait_turn co 3;
         reached := true));
  Commit_order.complete co 2;
  Engine.run e;
  check_bool "blocked while 1 is outstanding" false !reached;
  Commit_order.complete co 1;
  Engine.run e;
  check_bool "released once the prefix reaches 2" true !reached

(* ------------------------------------------------------------------ *)
(* Db *)

let fixed_disk e =
  Storage.Disk.create e ~rng:(Rng.create 5)
    ~config:
      {
        Storage.Disk.fsync_lo = Time.of_ms 8.;
        fsync_hi = Time.of_ms 8.;
        position_lo = Time.of_ms 5.;
        position_hi = Time.of_ms 5.;
        bandwidth_bytes_per_sec = 1e9;
      }
    ()

let make_db ?(config = Db.default_config) ?(seed = 1) () =
  let e = Engine.create () in
  let disk = fixed_disk e in
  let db = Db.create e ~rng:(Rng.create seed) ~log_disk:disk ~config () in
  (e, db, disk)

let in_fiber e f =
  let failure = ref None in
  let _ =
    Engine.spawn e (fun () ->
        try f () with exn -> failure := Some exn)
  in
  Engine.run e;
  match !failure with Some exn -> raise exn | None -> ()

let test_db_read_your_writes () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 1) ];
  in_fiber e (fun () ->
      let tx = Db.begin_tx db in
      Alcotest.check value_opt "initial" (Some (vi 1)) (Db.read tx (k "t" "a"));
      (match Db.write tx (k "t" "a") (upd 42) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write should succeed");
      Alcotest.check value_opt "own write visible" (Some (vi 42)) (Db.read tx (k "t" "a"));
      Alcotest.check value_opt "not committed yet" (Some (vi 1))
        (Db.read_committed db (k "t" "a"));
      match Db.commit_standalone tx with
      | Ok v ->
          check_int "first version" 1 v;
          Alcotest.check value_opt "committed" (Some (vi 42))
            (Db.read_committed db (k "t" "a"))
      | Error _ -> Alcotest.fail "commit should succeed")

let test_db_snapshot_isolation () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 1) ];
  in_fiber e (fun () ->
      let t1 = Db.begin_tx db in
      let t2 = Db.begin_tx db in
      (match Db.write t1 (k "t" "a") (upd 10) with Ok () -> () | Error _ -> Alcotest.fail "w");
      (match Db.commit_standalone t1 with Ok _ -> () | Error _ -> Alcotest.fail "c");
      (* t2's snapshot predates t1's commit *)
      Alcotest.check value_opt "t2 sees old value" (Some (vi 1)) (Db.read t2 (k "t" "a"));
      let t3 = Db.begin_tx db in
      Alcotest.check value_opt "t3 sees new value" (Some (vi 10)) (Db.read t3 (k "t" "a"));
      Db.commit_readonly t2;
      Db.commit_readonly t3)

let test_db_first_updater_wins_committed () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  in_fiber e (fun () ->
      let t1 = Db.begin_tx db in
      let t2 = Db.begin_tx db in
      (match Db.write t1 (k "t" "a") (upd 1) with Ok () -> () | Error _ -> Alcotest.fail "w1");
      (match Db.commit_standalone t1 with Ok _ -> () | Error _ -> Alcotest.fail "c1");
      match Db.write t2 (k "t" "a") (upd 2) with
      | Error (Db.Ww_conflict key) ->
          check_bool "conflict on a" true (Key.equal key (k "t" "a"));
          check_int "t2 aborted" 1 (Db.aborts db)
      | _ -> Alcotest.fail "expected first-updater-wins abort")

let test_db_blocked_writer_aborts_after_holder_commits () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  let t2_result = ref (Ok ()) in
  let _ =
    Engine.spawn e (fun () ->
        let t1 = Db.begin_tx db in
        ignore (Db.write t1 (k "t" "a") (upd 1));
        Engine.sleep e (Time.of_ms 50.);
        ignore (Db.commit_standalone t1))
  in
  let _ =
    Engine.spawn e (fun () ->
        Engine.sleep e (Time.of_ms 1.);
        let t2 = Db.begin_tx db in
        t2_result := Db.write t2 (k "t" "a") (upd 2))
  in
  Engine.run e;
  match !t2_result with
  | Error (Db.Ww_conflict _) -> ()
  | _ -> Alcotest.fail "blocked writer must abort once holder commits"

let test_db_blocked_writer_proceeds_after_holder_aborts () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  let outcome = ref None in
  let _ =
    Engine.spawn e (fun () ->
        let t1 = Db.begin_tx db in
        ignore (Db.write t1 (k "t" "a") (upd 1));
        Engine.sleep e (Time.of_ms 50.);
        Db.abort t1)
  in
  let _ =
    Engine.spawn e (fun () ->
        Engine.sleep e (Time.of_ms 1.);
        let t2 = Db.begin_tx db in
        let r = Db.write t2 (k "t" "a") (upd 2) in
        outcome := Some (r, Db.commit_standalone t2))
  in
  Engine.run e;
  match !outcome with
  | Some (Ok (), Ok _) ->
      Alcotest.check value_opt "t2's write committed" (Some (vi 2))
        (Db.read_committed db (k "t" "a"))
  | _ -> Alcotest.fail "waiter should proceed after holder aborts"

let test_db_deadlock_victim () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0); (k "t" "b", vi 0) ];
  let t1_ok = ref false and t2_err = ref None in
  let _ =
    Engine.spawn e (fun () ->
        let t1 = Db.begin_tx db in
        ignore (Db.write t1 (k "t" "a") (upd 1));
        Engine.sleep e (Time.of_ms 10.);
        (* t1 waits for b (held by t2) *)
        match Db.write t1 (k "t" "b") (upd 1) with
        | Ok () ->
            ignore (Db.commit_standalone t1);
            t1_ok := true
        | Error _ -> ())
  in
  let _ =
    Engine.spawn e (fun () ->
        let t2 = Db.begin_tx db in
        ignore (Db.write t2 (k "t" "b") (upd 2));
        Engine.sleep e (Time.of_ms 20.);
        (* closes the cycle: t2 -> a (t1), t1 -> b (t2) *)
        match Db.write t2 (k "t" "a") (upd 2) with
        | Error (Db.Deadlock cycle) -> t2_err := Some cycle
        | _ -> ())
  in
  Engine.run e;
  (match !t2_err with
  | Some cycle -> check_bool "cycle found" true (List.length cycle >= 2)
  | None -> Alcotest.fail "expected deadlock victim");
  check_bool "survivor committed" true !t1_ok;
  check_int "one deadlock counted" 1 (Db.deadlocks_detected db)

let test_db_write_skew_allowed () =
  (* SI is not serializable: disjoint writes based on overlapping reads
     both commit. *)
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "x", vi 1); (k "t" "y", vi 1) ];
  in_fiber e (fun () ->
      let t1 = Db.begin_tx db in
      let t2 = Db.begin_tx db in
      let x1 = Value.as_int (Option.get (Db.read t1 (k "t" "x"))) in
      let y2 = Value.as_int (Option.get (Db.read t2 (k "t" "y"))) in
      ignore (Db.write t1 (k "t" "y") (upd (-x1)));
      ignore (Db.write t2 (k "t" "x") (upd (-y2)));
      (match Db.commit_standalone t1 with Ok _ -> () | Error _ -> Alcotest.fail "t1");
      (match Db.commit_standalone t2 with Ok _ -> () | Error _ -> Alcotest.fail "t2");
      Alcotest.check value_opt "x" (Some (vi (-1))) (Db.read_committed db (k "t" "x"));
      Alcotest.check value_opt "y" (Some (vi (-1))) (Db.read_committed db (k "t" "y")))

let test_db_group_commit_fsyncs () =
  (* Ten standalone committers at the same instant share fsyncs. *)
  let e, db, disk = make_db () in
  Db.load db (List.init 10 (fun i -> (k "t" (string_of_int i), vi 0)));
  for i = 0 to 9 do
    ignore
      (Engine.spawn e (fun () ->
           let tx = Db.begin_tx db in
           ignore (Db.write tx (k "t" (string_of_int i)) (upd 1));
           ignore (Db.commit_standalone tx)))
  done;
  Engine.run e;
  check_int "ten commits" 10 (Db.commits db);
  check_bool "far fewer fsyncs than commits" true (Storage.Disk.fsyncs disk <= 2);
  check_int "version advanced to 10" 10 (Db.current_version db)

let test_db_ordered_announce () =
  (* The Tashkent-API scenario from paper 3: four transactions submitted
     concurrently with a prescribed order commit in one fsync and are
     announced 3,4,8,9. *)
  let e, db, disk = make_db () in
  Db.load db [ (k "t" "a", vi 0); (k "t" "b", vi 0) ];
  let announced = ref [] in
  let submit version order ws =
    ignore
      (Engine.spawn e (fun () ->
           match Db.apply_writeset db ~version ~order ws with
           | Ok () -> announced := (version, Time.to_us (Engine.now e)) :: !announced
           | Error _ -> Alcotest.fail "apply failed"))
  in
  (* Submitted out of global order, on disjoint keys (conflicting remote
     writesets must never be submitted concurrently — paper 5.2.1). *)
  submit 9 4 (Writeset.singleton (k "t" "d") (upd 9));
  submit 3 1 (Writeset.singleton (k "t" "a") (upd 3));
  submit 8 3 (Writeset.singleton (k "t" "c") (upd 8));
  submit 4 2 (Writeset.singleton (k "t" "b") (upd 4));
  Engine.run e;
  let versions = List.map fst (List.rev !announced) in
  Alcotest.(check (list int)) "announced in global order" [ 3; 4; 8; 9 ] versions;
  check_int "single grouped fsync" 1 (Storage.Disk.fsyncs disk);
  check_int "replica at version 9" 9 (Db.current_version db);
  Alcotest.check value_opt "final d" (Some (vi 9)) (Db.read_committed db (k "t" "d"))

let test_db_no_intermediate_snapshot_exposed () =
  (* While version 9's record is durable before version 4 announces, no
     snapshot may ever show T9 without T4. *)
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0); (k "t" "b", vi 0) ];
  let violations = ref 0 in
  let _ =
    Engine.spawn e ~name:"observer" (fun () ->
        for _ = 1 to 200 do
          let b = Db.read_committed db (k "t" "b") in
          let a = Db.read_committed db (k "t" "a") in
          (match (a, b) with
          | Some a, Some b when Value.as_int b = 9 && Value.as_int a <> 4 -> incr violations
          | _ -> ());
          Engine.sleep e (Time.us 100)
        done)
  in
  let submit version order ws =
    ignore (Engine.spawn e (fun () -> ignore (Db.apply_writeset db ~version ~order ws)))
  in
  submit 9 2 (Writeset.singleton (k "t" "b") (upd 9));
  Engine.schedule e ~at:(Time.of_ms 5.) (fun () ->
      submit 4 1 (Writeset.singleton (k "t" "a") (upd 4)));
  Engine.run e;
  check_int "no inconsistent snapshot" 0 !violations

let test_db_skip_order_unblocks () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  let committed = ref false in
  let o1 = Db.next_order db in
  let o2 = Db.next_order db in
  let _ =
    Engine.spawn e (fun () ->
        match Db.apply_writeset db ~version:2 ~order:o2 (Writeset.singleton (k "t" "a") (upd 2)) with
        | Ok () -> committed := true
        | Error _ -> ())
  in
  (* order 1's transaction aborted: release its slot *)
  Db.skip_order db o1;
  Engine.run e;
  check_bool "later order proceeded" true !committed

let test_db_remote_priority_preempts () =
  let config = { Db.default_config with remote_priority = true } in
  let e, db, _ = make_db ~config () in
  Db.load db [ (k "t" "a", vi 0) ];
  let local_result = ref None in
  let _ =
    Engine.spawn e (fun () ->
        let tx = Db.begin_tx db in
        ignore (Db.write tx (k "t" "a") (upd 1));
        Engine.sleep e (Time.of_ms 100.);
        local_result := Some (Db.commit_standalone tx))
  in
  let applied = ref false in
  let _ =
    Engine.spawn e (fun () ->
        Engine.sleep e (Time.of_ms 1.);
        let order = Db.next_order db in
        match Db.apply_writeset db ~version:50 ~order (Writeset.singleton (k "t" "a") (upd 9)) with
        | Ok () -> applied := true
        | Error _ -> ())
  in
  Engine.run e;
  check_bool "remote writeset applied" true !applied;
  check_bool "remote did not wait for local think time" true
    Time.(Engine.now e < Time.of_ms 200.);
  (match !local_result with
  | Some (Error Db.Preempted) -> ()
  | _ -> Alcotest.fail "local holder should have been preempted");
  Alcotest.check value_opt "remote value stands" (Some (vi 9))
    (Db.read_committed db (k "t" "a"))

let test_db_remote_no_priority_waits () =
  (* Without priorities the remote writeset queues behind the local holder
     (paper 8.2 option (a)); when the holder aborts, the remote proceeds. *)
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  let _ =
    Engine.spawn e (fun () ->
        let tx = Db.begin_tx db in
        ignore (Db.write tx (k "t" "a") (upd 1));
        Engine.sleep e (Time.of_ms 50.);
        Db.abort tx)
  in
  let applied_at = ref Time.zero in
  let _ =
    Engine.spawn e (fun () ->
        Engine.sleep e (Time.of_ms 1.);
        let order = Db.next_order db in
        match Db.apply_writeset db ~version:50 ~order (Writeset.singleton (k "t" "a") (upd 9)) with
        | Ok () -> applied_at := Engine.now e
        | Error _ -> Alcotest.fail "apply failed")
  in
  Engine.run e;
  check_bool "remote waited for local abort" true Time.(!applied_at >= Time.of_ms 50.)

let test_db_artificial_conflict_stalls_concurrent_submission () =
  (* Conflicting remote writesets submitted concurrently wedge the database
     (lock queue vs announce order) — the deadlock the paper warns the
     middleware must avoid by serialising them (5.2.1). *)
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  let finished = ref 0 in
  let submit version order =
    ignore
      (Engine.spawn e (fun () ->
           match
             Db.apply_writeset db ~version ~order
               (Writeset.singleton (k "t" "a") (upd version))
           with
           | Ok () | Error _ -> incr finished))
  in
  (* order 2 grabs the lock first, then waits for order 1's announce, which
     is queued behind the lock. *)
  submit 9 2;
  Engine.schedule e ~at:(Time.of_ms 1.) (fun () -> submit 8 1);
  Engine.run ~until:(Time.sec 5) e;
  check_int "both stuck" 0 !finished

let test_db_doom_parked_transaction () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  let blocked_result = ref None in
  let _ =
    Engine.spawn e (fun () ->
        let t1 = Db.begin_tx db in
        ignore (Db.write t1 (k "t" "a") (upd 1));
        Engine.sleep e (Time.of_ms 100.);
        ignore (Db.commit_standalone t1))
  in
  let victim_id = ref 0 in
  let _ =
    Engine.spawn e (fun () ->
        Engine.sleep e (Time.of_ms 1.);
        let t2 = Db.begin_tx db in
        victim_id := Db.tx_id t2;
        blocked_result := Some (Db.write t2 (k "t" "a") (upd 2)))
  in
  Engine.schedule e ~at:(Time.of_ms 10.) (fun () -> Db.doom db !victim_id);
  Engine.run e;
  match !blocked_result with
  | Some (Error Db.Preempted) -> ()
  | _ -> Alcotest.fail "parked transaction should wake with Preempted"

let test_db_crash_recover_synchronous () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  in_fiber e (fun () ->
      let tx = Db.begin_tx db in
      ignore (Db.write tx (k "t" "a") (upd 11));
      ignore (Db.commit_standalone tx);
      let tx2 = Db.begin_tx db in
      ignore (Db.write tx2 (k "t" "b") (Writeset.Insert (vi 22)));
      ignore (Db.commit_standalone tx2));
  Db.crash db;
  let v = Db.recover db in
  check_int "recovered to version 2" 2 v;
  Alcotest.check value_opt "a recovered" (Some (vi 11)) (Db.read_committed db (k "t" "a"));
  Alcotest.check value_opt "b recovered" (Some (vi 22)) (Db.read_committed db (k "t" "b"))

let test_db_crash_asynchronous_loses_everything () =
  let config = { Db.default_config with durability = Db.Asynchronous } in
  let e, db, disk = make_db ~config () in
  Db.load db [ (k "t" "a", vi 0) ];
  in_fiber e (fun () ->
      let tx = Db.begin_tx db in
      ignore (Db.write tx (k "t" "a") (upd 1));
      ignore (Db.commit_standalone tx));
  check_int "commit did not fsync" 0 (Storage.Disk.fsyncs disk);
  Db.crash db;
  let v = Db.recover db in
  check_int "nothing recovered" 0 v;
  (* the initial population survives in the data files, the commit is lost *)
  Alcotest.check value_opt "committed update lost" (Some (vi 0))
    (Db.read_committed db (k "t" "a"))

let test_db_periodic_durability_prefix () =
  let config = { Db.default_config with durability = Db.Periodic (Time.of_ms 100.) } in
  let e, db, _ = make_db ~config () in
  Db.load db [ (k "t" "a", vi 0) ];
  (* one commit before the periodic sync, one after *)
  let _ =
    Engine.spawn e (fun () ->
        let tx = Db.begin_tx db in
        ignore (Db.write tx (k "t" "a") (upd 1));
        ignore (Db.commit_standalone tx);
        Engine.sleep e (Time.of_ms 150.);
        let tx2 = Db.begin_tx db in
        ignore (Db.write tx2 (k "t" "a") (upd 2));
        ignore (Db.commit_standalone tx2))
  in
  Engine.run ~until:(Time.of_ms 180.) e;
  Db.crash db;
  let v = Db.recover db in
  check_int "prefix recovered" 1 v;
  Alcotest.check value_opt "first commit survives" (Some (vi 1))
    (Db.read_committed db (k "t" "a"))

(* ------------------------------------------------------------------ *)
(* Commutative deltas at the database layer *)

let test_db_delta_read_your_writes () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 10) ];
  in_fiber e (fun () ->
      let tx = Db.begin_tx db in
      (match Db.write tx (k "t" "a") (Writeset.Add 5) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "delta write should succeed");
      Alcotest.check value_opt "own delta folds onto the snapshot" (Some (vi 15))
        (Db.read tx (k "t" "a"));
      (match Db.write tx (k "t" "a") (Writeset.Add 2) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "second delta should succeed");
      Alcotest.check value_opt "deltas accumulate" (Some (vi 17)) (Db.read tx (k "t" "a"));
      match Db.commit_standalone tx with
      | Ok _ ->
          Alcotest.check value_opt "committed" (Some (vi 17))
            (Db.read_committed db (k "t" "a"))
      | Error _ -> Alcotest.fail "commit should succeed")

let test_db_delta_first_updater_relaxed () =
  (* A committed delta does not abort a concurrent delta writer (they
     commute; this mirrors the certifier's fast path so local and global
     certification agree), but it still aborts a concurrent blind writer,
     and a committed blind write still aborts a concurrent delta. *)
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  in_fiber e (fun () ->
      let t1 = Db.begin_tx db in
      let t2 = Db.begin_tx db in
      let t3 = Db.begin_tx db in
      (match Db.write t1 (k "t" "a") (Writeset.Add 1) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "t1 write");
      (match Db.commit_standalone t1 with Ok _ -> () | Error _ -> Alcotest.fail "t1 commit");
      (match Db.write t2 (k "t" "a") (Writeset.Add 2) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "a delta must not conflict with a committed delta");
      (match Db.commit_standalone t2 with Ok _ -> () | Error _ -> Alcotest.fail "t2 commit");
      Alcotest.check value_opt "both deltas committed" (Some (vi 3))
        (Db.read_committed db (k "t" "a"));
      (match Db.write t3 (k "t" "a") (upd 99) with
      | Error (Db.Ww_conflict _) -> ()
      | _ -> Alcotest.fail "a blind write must still abort against committed deltas");
      let t4 = Db.begin_tx db in
      let t5 = Db.begin_tx db in
      (match Db.write t4 (k "t" "a") (upd 50) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "t4 write");
      (match Db.commit_standalone t4 with Ok _ -> () | Error _ -> Alcotest.fail "t4 commit");
      match Db.write t5 (k "t" "a") (Writeset.Add 1) with
      | Error (Db.Ww_conflict _) -> ()
      | _ -> Alcotest.fail "a delta must abort against a committed blind write")

let test_db_delta_crash_recover () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 10) ];
  in_fiber e (fun () ->
      let tx = Db.begin_tx db in
      ignore (Db.write tx (k "t" "a") (Writeset.Add 5));
      ignore (Db.commit_standalone tx);
      let tx2 = Db.begin_tx db in
      ignore (Db.write tx2 (k "t" "a") (Writeset.Add 7));
      ignore (Db.commit_standalone tx2));
  Db.crash db;
  check_int "recovered both delta commits" 2 (Db.recover db);
  Alcotest.check value_opt "deltas replayed onto the base" (Some (vi 22))
    (Db.read_committed db (k "t" "a"))

let test_db_delta_torn_tail_recovery () =
  (* The second delta's commit record is mid-fsync at the crash: the torn
     slot must be discarded by the recovery scan, and the surviving prefix
     must still fold its delta onto the base. *)
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 100) ];
  let _ =
    Engine.spawn e (fun () ->
        let tx = Db.begin_tx db in
        ignore (Db.write tx (k "t" "a") (Writeset.Add 5));
        ignore (Db.commit_standalone tx);
        let tx2 = Db.begin_tx db in
        ignore (Db.write tx2 (k "t" "a") (Writeset.Add 7));
        ignore (Db.commit_standalone tx2))
  in
  (* Step the clock until the second record is appended but not yet synced,
     then pull the plug mid-flush. *)
  let wal = Db.wal db in
  while
    not (Storage.Wal.last_lsn wal = 2 && Storage.Wal.durable_lsn wal = 1)
    && Time.(Engine.now e < sec 1)
  do
    Engine.run ~until:(Time.add (Engine.now e) (Time.of_ms 1.)) e
  done;
  let lost = Storage.Wal.crash ~torn:true wal in
  check_bool "second record was still in flight" true (lost >= 1);
  let torn_before = Storage.Wal.torn_discarded (Db.wal db) in
  check_int "only the durable prefix replays" 1 (Db.recover db);
  check_int "the torn record was discarded by the scan" (torn_before + 1)
    (Storage.Wal.torn_discarded (Db.wal db));
  Alcotest.check value_opt "surviving prefix folds" (Some (vi 105))
    (Db.read_committed db (k "t" "a"))

let test_db_batch_apply_version_faithful () =
  (* A grouped remote batch must slot each writeset in at its own
     certified version, not rename them all to the batch top: a delayed
     duplicate delivery of one member (a commit reply overtaking the
     stream after certifier failover) then backfills onto the existing
     chain entry idempotently instead of double-counting its deltas. *)
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 10); (k "t" "b", vi 0) ];
  in_fiber e (fun () ->
      let dup = Writeset.of_list [ (k "t" "a", Writeset.Add 7); (k "t" "b", upd 3) ] in
      let batch =
        [
          (1, Writeset.singleton (k "t" "a") (Writeset.Add 5));
          (2, dup);
          (3, Writeset.singleton (k "t" "b") (Writeset.Add 4));
        ]
      in
      (match Db.apply_writeset_batch db ~batch ~order:(Db.next_order db) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "batch apply should succeed");
      check_int "store at the batch top" 3 (Db.current_version db);
      Alcotest.check value_opt "deltas folded across the batch" (Some (vi 22))
        (Db.read_committed db (k "t" "a"));
      Alcotest.check value_opt "snapshot below the top sees only v1" (Some (vi 15))
        (Db.read_committed db ~at:1 (k "t" "a"));
      Alcotest.check value_opt "blind then delta" (Some (vi 7))
        (Db.read_committed db (k "t" "b"));
      (match Db.apply_writeset db ~version:2 ~order:(Db.next_order db) dup with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "duplicate delivery should succeed");
      check_int "duplicate went through backfill" 1 (Db.backfills db);
      Alcotest.check value_opt "no double count" (Some (vi 22))
        (Db.read_committed db (k "t" "a"));
      Alcotest.check value_opt "blind image undisturbed" (Some (vi 7))
        (Db.read_committed db (k "t" "b")))

(* ------------------------------------------------------------------ *)
(* Parallel apply: out-of-order install, ordered publish (Apply_pool's
   database substrate) *)

let test_db_parallel_out_of_order_publish () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0); (k "t" "b", vi 0) ];
  let seen_at_2 = ref (-1) in
  ignore
    (Engine.spawn e (fun () ->
         (* Hold version 1 back so version 2's worker finishes first. *)
         Engine.sleep e (Time.of_ms 30.);
         ignore
           (Db.apply_writeset_parallel db ~version:1 ~order:1
              (Writeset.singleton (k "t" "a") (upd 1)))));
  ignore
    (Engine.spawn e (fun () ->
         ignore
           (Db.apply_writeset_parallel db ~version:2 ~order:2
              (Writeset.singleton (k "t" "b") (upd 2)));
         seen_at_2 := Db.current_version db));
  Engine.run e;
  (* Version 2 finished first, but must not have been visible before the
     prefix (version 1) closed. *)
  check_int "publish barrier held" 0 !seen_at_2;
  check_int "prefix closed, both published" 2 (Db.current_version db);
  Alcotest.check value_opt "a at latest" (Some (vi 1)) (Db.read_committed db (k "t" "a"));
  Alcotest.check value_opt "b at latest" (Some (vi 2)) (Db.read_committed db (k "t" "b"));
  (* Snapshot at version 1 must not show version 2's row. *)
  Alcotest.check value_opt "b invisible at snapshot 1" (Some (vi 0))
    (Db.read_committed db ~at:1 (k "t" "b"))

let test_db_parallel_recover_out_of_order_log () =
  (* Both records are durable but were logged out of version order (2's
     fsync completed before 1's). Recovery sorts by version, verifies the
     redo chain, and reinstates everything. *)
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0); (k "t" "b", vi 0) ];
  ignore
    (Engine.spawn e (fun () ->
         Engine.sleep e (Time.of_ms 30.);
         ignore
           (Db.apply_writeset_parallel db ~version:1 ~order:1
              (Writeset.singleton (k "t" "a") (upd 1)))));
  ignore
    (Engine.spawn e (fun () ->
         ignore
           (Db.apply_writeset_parallel db ~version:2 ~order:2
              (Writeset.singleton (k "t" "b") (upd 2)))));
  Engine.run e;
  Db.crash db;
  let v = Db.recover db in
  check_int "recovered through the reordered log" 2 v;
  Alcotest.check value_opt "a recovered" (Some (vi 1)) (Db.read_committed db (k "t" "a"));
  Alcotest.check value_opt "b recovered" (Some (vi 2)) (Db.read_committed db (k "t" "b"))

let test_db_parallel_delta_apply_and_recover () =
  (* Version 2 (a delta) is installed before version 1 (the blind base it
     folds onto); reads after publish and replay after a crash must both see
     base + delta. *)
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  ignore
    (Engine.spawn e (fun () ->
         Engine.sleep e (Time.of_ms 30.);
         ignore
           (Db.apply_writeset_parallel db ~version:1 ~order:1
              (Writeset.singleton (k "t" "a") (upd 10)))));
  ignore
    (Engine.spawn e (fun () ->
         ignore
           (Db.apply_writeset_parallel db ~version:2 ~order:2
              (Writeset.singleton (k "t" "a") (Writeset.Add 3)))));
  Engine.run e;
  check_int "both published" 2 (Db.current_version db);
  Alcotest.check value_opt "delta folded onto the later-installed base" (Some (vi 13))
    (Db.read_committed db (k "t" "a"));
  Alcotest.check value_opt "snapshot below the delta" (Some (vi 10))
    (Db.read_committed db ~at:1 (k "t" "a"));
  Db.crash db;
  check_int "recovered" 2 (Db.recover db);
  Alcotest.check value_opt "recovery refolds the delta" (Some (vi 13))
    (Db.read_committed db (k "t" "a"))

let test_db_parallel_recover_truncates_at_gap () =
  (* Version 2's record reaches the log but version 1's never does (its
     worker was still stalled at the crash). The recovered state must be the
     consistent prefix below the hole — version 2 cannot be kept without 1. *)
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0); (k "t" "b", vi 0) ];
  ignore
    (Engine.spawn e (fun () ->
         ignore
           (Db.apply_writeset_parallel db ~version:2 ~order:2
              (Writeset.singleton (k "t" "b") (upd 2)))));
  ignore
    (Engine.spawn e (fun () ->
         Engine.sleep e (Time.sec 5);
         ignore
           (Db.apply_writeset_parallel db ~version:1 ~order:1
              (Writeset.singleton (k "t" "a") (upd 1)))));
  Engine.run ~until:(Time.sec 1) e;
  Db.crash db;
  let v = Db.recover db in
  check_int "orphan suffix truncated" 0 v;
  Alcotest.check value_opt "b rolled back to the prefix" (Some (vi 0))
    (Db.read_committed db (k "t" "b"));
  Alcotest.check value_opt "a untouched" (Some (vi 0)) (Db.read_committed db (k "t" "a"))

let test_db_restore_from_dump () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  in_fiber e (fun () ->
      let tx = Db.begin_tx db in
      ignore (Db.write tx (k "t" "a") (upd 5));
      ignore (Db.commit_standalone tx));
  let version, copy = Db.dump db in
  check_int "dump version" 1 version;
  Db.crash db;
  Db.restore_from_dump db ~version copy;
  check_int "restored version" 1 (Db.current_version db);
  Alcotest.check value_opt "restored value" (Some (vi 5)) (Db.read_committed db (k "t" "a"))

let test_db_commit_readonly () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  in_fiber e (fun () ->
      let tx = Db.begin_tx db in
      ignore (Db.read tx (k "t" "a"));
      Db.commit_readonly tx);
  check_int "no version created" 0 (Db.current_version db);
  check_int "no commit counted" 0 (Db.commits db);
  check_int "no abort counted" 0 (Db.aborts db)

(* Property: N concurrent incrementers of one counter; first-updater-wins
   means the final value equals the number of successful commits. *)
let prop_no_lost_updates =
  QCheck.Test.make ~name:"no lost updates under concurrent increments" ~count:30
    QCheck.(pair (int_range 2 12) (int_range 0 1000))
    (fun (n, seed) ->
      let e, db, _ = make_db ~seed () in
      Db.load db [ (k "t" "counter", vi 0) ];
      let successes = ref 0 in
      let rng = Rng.create seed in
      for _ = 1 to n do
        let delay = Rng.int rng 20_000 in
        ignore
          (Engine.spawn e (fun () ->
               Engine.sleep e (Time.us delay);
               let tx = Db.begin_tx db in
               match Db.read tx (k "t" "counter") with
               | None -> ()
               | Some v -> (
                   match Db.write tx (k "t" "counter") (upd (Value.as_int v + 1)) with
                   | Error _ -> ()
                   | Ok () -> (
                       match Db.commit_standalone tx with
                       | Ok _ -> incr successes
                       | Error _ -> ()))))
      done;
      Engine.run e;
      match Db.read_committed db (k "t" "counter") with
      | Some v -> Value.as_int v = !successes
      | None -> false)

let test_db_vacuum_prunes_versions () =
  let e = Engine.create () in
  let disk = fixed_disk e in
  let config = { Db.default_config with gc_interval = Some (Time.of_ms 500.) } in
  let db = Db.create e ~rng:(Rng.create 1) ~log_disk:disk ~config () in
  Db.load db [ (k "t" "a", vi 0) ];
  let _ =
    Engine.spawn e (fun () ->
        for i = 1 to 50 do
          let tx = Db.begin_tx db in
          ignore (Db.write tx (k "t" "a") (upd i));
          ignore (Db.commit_standalone tx)
        done)
  in
  Engine.run ~until:(Time.sec 2) e;
  check_int "all committed" 50 (Db.commits db);
  check_bool "old versions vacuumed" true (Store.version_records (Db.store db) <= 3);
  Alcotest.check value_opt "latest value intact" (Some (vi 50))
    (Db.read_committed db (k "t" "a"))

let test_db_watermark_and_active_tracking () =
  let e, db, _ = make_db () in
  Db.load db [ (k "t" "a", vi 0) ];
  in_fiber e (fun () ->
      for i = 1 to 3 do
        let tx = Db.begin_tx db in
        (match Db.write tx (k "t" "a") (upd i) with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "write");
        match Db.commit_standalone tx with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "commit"
      done;
      check_int "idle: watermark = current version" 3
        (Db.oldest_active_snapshot db);
      let reader = Db.begin_tx db in
      let writer = Db.begin_tx db in
      (match Db.write writer (k "t" "a") (upd 9) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write2");
      (match Db.commit_standalone writer with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "commit2");
      check_int "reader pins its snapshot" 3 (Db.oldest_active_snapshot db);
      Db.abort reader;
      check_int "abort releases the pin" 4 (Db.oldest_active_snapshot db);
      let pinned = Db.begin_tx db in
      Db.doom db (Db.tx_id pinned);
      check_int "a doomed transaction does not pin" 4
        (Db.oldest_active_snapshot db);
      Db.abort pinned;
      let _hanging = Db.begin_tx db in
      Db.crash db;
      check_int "crash empties the active set" 0
        (List.length (Db.active_txids db)))

let test_db_stale_snapshot_expiry () =
  (* The max-snapshot-age escape hatch: a transaction parked forever must
     not pin the watermark past the configured age — the vacuum pass dooms
     it, counts it, and GC moves on. *)
  let config =
    {
      Db.default_config with
      gc_interval = Some (Time.sec 1);
      max_snapshot_age = Some (Time.sec 2);
    }
  in
  let e, db, _ = make_db ~config () in
  Db.load db [ (k "t" "a", vi 0) ];
  let stale = ref None in
  ignore (Engine.spawn e (fun () -> stale := Some (Db.begin_tx db)));
  Engine.run ~until:(Time.of_ms 10.) e;
  ignore
    (Engine.spawn e (fun () ->
         for i = 1 to 5 do
           let tx = Db.begin_tx db in
           (match Db.write tx (k "t" "a") (upd i) with
           | Ok () -> ()
           | Error _ -> ());
           ignore (Db.commit_standalone tx)
         done));
  Engine.run ~until:(Time.sec 6) e;
  check_int "escape hatch fired once" 1 (Db.stale_snapshots_expired db);
  (match !stale with
  | Some tx -> check_bool "stale tx doomed" true (Db.is_doomed tx <> None)
  | None -> Alcotest.fail "leaked tx never began");
  check_int "watermark freed" 5 (Db.oldest_active_snapshot db)

let test_db_vacuum_capped_by_cluster_floor () =
  (* The vacuum must not prune past the cluster floor even when no local
     snapshot needs the history — another replica might. And the floor is
     monotone: stale gossip cannot move it backwards. *)
  let config = { Db.default_config with gc_interval = Some (Time.sec 1) } in
  let e, db, _ = make_db ~config () in
  Db.load db [ (k "t" "a", vi 0) ];
  ignore
    (Engine.spawn e (fun () ->
         for i = 1 to 10 do
           let tx = Db.begin_tx db in
           (match Db.write tx (k "t" "a") (upd i) with
           | Ok () -> ()
           | Error _ -> ());
           ignore (Db.commit_standalone tx)
         done));
  Engine.run ~until:(Time.of_ms 900.) e;
  check_int "all versions present before the first vacuum" 11
    (Store.version_records (Db.store db));
  Db.set_cluster_gc_floor db 5;
  Engine.run ~until:(Time.of_ms 1500.) e;
  check_int "pruned up to the floor only" 6
    (Store.version_records (Db.store db));
  check_int "floor recorded" 5 (Db.cluster_gc_floor db);
  Db.set_cluster_gc_floor db 3;
  check_int "floor is monotone" 5 (Db.cluster_gc_floor db);
  Db.set_cluster_gc_floor db 20;
  Engine.run ~until:(Time.of_ms 2500.) e;
  check_int "a floor above the local watermark is capped by it" 1
    (Store.version_records (Db.store db));
  Alcotest.check value_opt "latest value intact" (Some (vi 10))
    (Db.read_committed db (k "t" "a"))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "mvcc.writeset",
      [
        Alcotest.test_case "basics" `Quick test_writeset_basics;
        Alcotest.test_case "supersede keeps position" `Quick test_writeset_supersede;
        Alcotest.test_case "intersection" `Quick test_writeset_intersects;
        Alcotest.test_case "union later wins" `Quick test_writeset_union_later_wins;
        Alcotest.test_case "encoded bytes" `Quick test_writeset_encoded_bytes;
        Alcotest.test_case "delta folding" `Quick test_writeset_delta_fold;
        Alcotest.test_case "delta union" `Quick test_writeset_delta_union;
        Alcotest.test_case "delta encoded bytes" `Quick test_writeset_delta_encoded_bytes;
      ]
      @ qsuite [ prop_intersects_symmetric; prop_intersects_iff_inter_keys; prop_union_keys ]
    );
    ( "mvcc.store",
      [
        Alcotest.test_case "snapshot reads" `Quick test_store_snapshot_reads;
        Alcotest.test_case "tombstones" `Quick test_store_tombstones;
        Alcotest.test_case "version monotonic" `Quick test_store_version_monotonic;
        Alcotest.test_case "sparse versions" `Quick test_store_sparse_versions;
        Alcotest.test_case "copy flattens and isolates" `Quick test_store_copy_flattens;
        Alcotest.test_case "gc keeps visibility" `Quick test_store_gc;
        Alcotest.test_case "delta reads fold onto images" `Quick test_store_delta_reads;
        Alcotest.test_case "delta install is order-insensitive" `Quick
          test_store_delta_out_of_order_install;
        Alcotest.test_case "gc materializes a delta base" `Quick
          test_store_gc_materializes_delta_base;
        Alcotest.test_case "copy materializes deltas" `Quick
          test_store_copy_materializes_deltas;
        Alcotest.test_case "gc preserves tombstones" `Quick
          test_store_gc_preserves_tombstones;
        Alcotest.test_case "copy preserves tombstones" `Quick
          test_store_copy_preserves_tombstones;
      ] );
    ( "mvcc.locks",
      [
        Alcotest.test_case "grant and re-entry" `Quick test_locks_grant_and_reentry;
        Alcotest.test_case "block and FIFO handoff" `Quick test_locks_block_and_handoff;
        Alcotest.test_case "deadlock detection" `Quick test_locks_deadlock_detection;
        Alcotest.test_case "no false deadlock" `Quick test_locks_no_false_deadlock;
        Alcotest.test_case "cancel wait" `Quick test_locks_cancel_wait;
        Alcotest.test_case "release frees" `Quick test_locks_release_frees;
      ] );
    ( "mvcc.commit_order",
      [
        Alcotest.test_case "sequencing" `Quick test_commit_order_sequencing;
        Alcotest.test_case "abuse blocks forever" `Quick test_commit_order_abuse_blocks;
        Alcotest.test_case "wrong announce rejected" `Quick test_commit_order_wrong_announce;
        Alcotest.test_case "complete publishes contiguous runs" `Quick
          test_commit_order_complete_out_of_order;
        Alcotest.test_case "complete releases waiters" `Quick
          test_commit_order_complete_releases_waiters;
      ] );
    ( "mvcc.db",
      [
        Alcotest.test_case "read your writes" `Quick test_db_read_your_writes;
        Alcotest.test_case "snapshot isolation" `Quick test_db_snapshot_isolation;
        Alcotest.test_case "first-updater-wins (committed)" `Quick
          test_db_first_updater_wins_committed;
        Alcotest.test_case "blocked writer aborts after holder commits" `Quick
          test_db_blocked_writer_aborts_after_holder_commits;
        Alcotest.test_case "blocked writer proceeds after holder aborts" `Quick
          test_db_blocked_writer_proceeds_after_holder_aborts;
        Alcotest.test_case "deadlock victim aborted" `Quick test_db_deadlock_victim;
        Alcotest.test_case "write skew allowed (SI)" `Quick test_db_write_skew_allowed;
        Alcotest.test_case "group commit shares fsyncs" `Quick test_db_group_commit_fsyncs;
        Alcotest.test_case "ordered announce (COMMIT n)" `Quick test_db_ordered_announce;
        Alcotest.test_case "no intermediate snapshot exposed" `Quick
          test_db_no_intermediate_snapshot_exposed;
        Alcotest.test_case "skip_order unblocks successors" `Quick
          test_db_skip_order_unblocks;
        Alcotest.test_case "remote priority preempts local" `Quick
          test_db_remote_priority_preempts;
        Alcotest.test_case "remote without priority waits" `Quick
          test_db_remote_no_priority_waits;
        Alcotest.test_case "artificial conflict wedges concurrent submission" `Quick
          test_db_artificial_conflict_stalls_concurrent_submission;
        Alcotest.test_case "doom a parked transaction" `Quick
          test_db_doom_parked_transaction;
        Alcotest.test_case "crash/recover (synchronous)" `Quick
          test_db_crash_recover_synchronous;
        Alcotest.test_case "crash loses all (asynchronous)" `Quick
          test_db_crash_asynchronous_loses_everything;
        Alcotest.test_case "periodic durability keeps prefix" `Quick
          test_db_periodic_durability_prefix;
        Alcotest.test_case "parallel apply publishes in order" `Quick
          test_db_parallel_out_of_order_publish;
        Alcotest.test_case "parallel recovery replays reordered log" `Quick
          test_db_parallel_recover_out_of_order_log;
        Alcotest.test_case "parallel recovery truncates at a gap" `Quick
          test_db_parallel_recover_truncates_at_gap;
        Alcotest.test_case "delta read-your-writes" `Quick test_db_delta_read_your_writes;
        Alcotest.test_case "delta first-updater relaxation" `Quick
          test_db_delta_first_updater_relaxed;
        Alcotest.test_case "delta crash/recover" `Quick test_db_delta_crash_recover;
        Alcotest.test_case "delta torn-tail recovery" `Quick
          test_db_delta_torn_tail_recovery;
        Alcotest.test_case "batch apply keeps versions faithful" `Quick
          test_db_batch_apply_version_faithful;
        Alcotest.test_case "parallel delta apply and recovery" `Quick
          test_db_parallel_delta_apply_and_recover;
        Alcotest.test_case "restore from dump" `Quick test_db_restore_from_dump;
        Alcotest.test_case "read-only commit is free" `Quick test_db_commit_readonly;
        Alcotest.test_case "vacuum prunes old versions" `Quick test_db_vacuum_prunes_versions;
        Alcotest.test_case "watermark tracks active snapshots" `Quick
          test_db_watermark_and_active_tracking;
        Alcotest.test_case "stale snapshot expiry (escape hatch)" `Quick
          test_db_stale_snapshot_expiry;
        Alcotest.test_case "vacuum capped by the cluster floor" `Quick
          test_db_vacuum_capped_by_cluster_floor;
      ]
      @ qsuite [ prop_no_lost_updates ] );
  ]

(* Unit-level tests for the middleware pieces that the end-to-end suite
   exercises only indirectly: the certifier client's retry machinery, the
   certifier's idempotency and no-durability mode, and proxy statistics. *)

open Sim
open Tashkent

let k row = Mvcc.Key.make ~table:"t" ~row
let ws row n = Mvcc.Writeset.singleton (k row) (Mvcc.Writeset.Update (Mvcc.Value.int n))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fast_net engine =
  Net.Network.create engine ~rng:(Rng.create 3)
    ~config:
      {
        Net.Network.latency_lo = Time.us 50;
        latency_hi = Time.us 50;
        bandwidth_bytes_per_sec = 1e9;
      }
    ()

(* A scriptable fake certifier endpoint. *)
let fake_certifier engine net name behaviour =
  let mb = Net.Network.register net name in
  ignore
    (Engine.spawn engine ~name (fun () ->
         let rec loop () =
           (match Mailbox.recv mb with
           | Types.Cert_request req -> behaviour req
           | _ -> ());
           loop ()
         in
         loop ()))

let test_cert_client_happy_path () =
  let engine = Engine.create () in
  let net = fast_net engine in
  let _proxy_mb = Net.Network.register net "proxy" in
  let proxy_mb = _proxy_mb in
  fake_certifier engine net "c0" (fun req ->
      Net.Network.send net ~src:"c0" ~dst:req.Types.replica
        (Types.Cert_reply
           {
             req_id = req.req_id;
             decision = Types.Commit;
             commit_version = 7;
             gc_floor = 0;
             remotes = [];
           }));
  let client =
    Cert_client.create engine ~net ~my_addr:"proxy" ~certifiers:[ "c0" ] ~req_id_base:0 ()
  in
  ignore
    (Engine.spawn engine (fun () ->
         let rec pump () =
           Cert_client.handle client (Mailbox.recv proxy_mb);
           pump ()
         in
         pump ()));
  let got = ref 0 in
  ignore
    (Engine.spawn engine (fun () ->
         let reply =
           Cert_client.certify client ~start_version:0 ~replica_version:0 ~oldest_snapshot:0 (ws "a" 1)
         in
         got := reply.commit_version));
  Engine.run ~until:(Time.sec 2) engine;
  check_int "commit version" 7 !got;
  check_int "one request" 1 (Cert_client.requests_sent client);
  check_int "no retries" 0 (Cert_client.retries client)

let test_cert_client_redirect () =
  let engine = Engine.create () in
  let net = fast_net engine in
  let proxy_mb = Net.Network.register net "proxy" in
  (* c0 redirects to c1; c1 answers *)
  fake_certifier engine net "c0" (fun req ->
      Net.Network.send net ~src:"c0" ~dst:req.Types.replica
        (Types.Cert_redirect { req_id = req.req_id; leader = Some "c1" }));
  fake_certifier engine net "c1" (fun req ->
      Net.Network.send net ~src:"c1" ~dst:req.Types.replica
        (Types.Cert_reply
           { req_id = req.req_id; decision = Types.Commit; commit_version = 9; gc_floor = 0; remotes = [] }));
  let client =
    Cert_client.create engine ~net ~my_addr:"proxy" ~certifiers:[ "c0"; "c1" ]
      ~req_id_base:0 ()
  in
  ignore
    (Engine.spawn engine (fun () ->
         let rec pump () =
           Cert_client.handle client (Mailbox.recv proxy_mb);
           pump ()
         in
         pump ()));
  let got = ref 0 in
  ignore
    (Engine.spawn engine (fun () ->
         got :=
           (Cert_client.certify client ~start_version:0 ~replica_version:0 ~oldest_snapshot:0 (ws "a" 1))
             .commit_version));
  Engine.run ~until:(Time.sec 2) engine;
  check_int "answer came from the leader" 9 !got;
  check_int "one retry (the redirect)" 1 (Cert_client.retries client)

let test_cert_client_timeout_failover () =
  let engine = Engine.create () in
  let net = fast_net engine in
  let proxy_mb = Net.Network.register net "proxy" in
  (* c0 is dead (no endpoint); c1 answers. Same request id on retry. *)
  let seen_ids = ref [] in
  fake_certifier engine net "c1" (fun req ->
      seen_ids := req.Types.req_id :: !seen_ids;
      Net.Network.send net ~src:"c1" ~dst:req.Types.replica
        (Types.Cert_reply
           { req_id = req.req_id; decision = Types.Commit; commit_version = 3; gc_floor = 0; remotes = [] }));
  let client =
    Cert_client.create engine ~net ~my_addr:"proxy" ~certifiers:[ "c0"; "c1" ]
      ~timeout:(Time.of_ms 100.) ~req_id_base:500 ()
  in
  ignore
    (Engine.spawn engine (fun () ->
         let rec pump () =
           Cert_client.handle client (Mailbox.recv proxy_mb);
           pump ()
         in
         pump ()));
  let got = ref 0 in
  ignore
    (Engine.spawn engine (fun () ->
         got :=
           (Cert_client.certify client ~start_version:0 ~replica_version:0 ~oldest_snapshot:0 (ws "a" 1))
             .commit_version));
  Engine.run ~until:(Time.sec 5) engine;
  check_int "eventually answered" 3 !got;
  check_bool "retried at least once" true (Cert_client.retries client >= 1);
  Alcotest.(check (list int)) "idempotent request id" [ 501 ] (List.sort_uniq compare !seen_ids)

(* ------------------------------------------------------------------ *)
(* Certifier unit behaviour through a real (1-node) instance *)

let one_node_certifier ?(config = Certifier.default_config) engine net =
  let env =
    Env.make ~engine ~rng:(Rng.create 9) ~net ~metrics:(Obs.Registry.create ())
      ~trace:(Obs.Trace.disabled ()) ()
  in
  Certifier.create env ~id:"cert0" ~peers:[] ~config ()

let certify_via engine net cert ~req_id ~start_version ~replica_version w =
  let reply = ref None in
  let mb = Net.Network.register net (Printf.sprintf "r%d" req_id) in
  ignore
    (Engine.spawn engine (fun () ->
         Net.Network.send net
           ~src:(Printf.sprintf "r%d" req_id)
           ~dst:(Certifier.id cert)
           (Types.Cert_request
              {
                req_id;
                trace_id = 0;
                replica = Printf.sprintf "r%d" req_id;
                start_version;
                replica_version;
                oldest_snapshot = 0;
                writeset = w;
              });
         match Mailbox.recv mb with
         | Types.Cert_reply r -> reply := Some r
         | _ -> ()));
  reply

let test_certifier_commit_then_conflict () =
  let engine = Engine.create () in
  let net = fast_net engine in
  let cert = one_node_certifier engine net in
  Engine.run ~until:(Time.sec 2) engine;
  check_bool "single node leads" true (Certifier.is_leader cert);
  let r1 = certify_via engine net cert ~req_id:1 ~start_version:0 ~replica_version:0 (ws "a" 1) in
  Engine.run ~until:(Time.sec 3) engine;
  (match !r1 with
  | Some { decision = Types.Commit; commit_version = 1; _ } -> ()
  | _ -> Alcotest.fail "first writeset should commit at version 1");
  (* concurrent writeset on the same key (started before version 1) aborts *)
  let r2 = certify_via engine net cert ~req_id:2 ~start_version:0 ~replica_version:0 (ws "a" 2) in
  Engine.run ~until:(Time.sec 4) engine;
  (match !r2 with
  | Some { decision = Types.Abort Types.Ww_conflict; _ } -> ()
  | _ -> Alcotest.fail "conflicting concurrent writeset must abort");
  (* a later transaction that saw version 1 commits *)
  let r3 = certify_via engine net cert ~req_id:3 ~start_version:1 ~replica_version:1 (ws "a" 3) in
  Engine.run ~until:(Time.sec 5) engine;
  match !r3 with
  | Some { decision = Types.Commit; commit_version = 2; _ } -> ()
  | _ -> Alcotest.fail "non-concurrent writer must commit"

let test_certifier_retry_idempotent () =
  let engine = Engine.create () in
  let net = fast_net engine in
  let cert = one_node_certifier engine net in
  Engine.run ~until:(Time.sec 2) engine;
  let r1 = certify_via engine net cert ~req_id:42 ~start_version:0 ~replica_version:0 (ws "a" 1) in
  Engine.run ~until:(Time.sec 3) engine;
  (* the same req_id again: must NOT create a new version *)
  let mb = Net.Network.register net "r42b" in
  let second = ref None in
  ignore
    (Engine.spawn engine (fun () ->
         Net.Network.send net ~src:"r42b" ~dst:"cert0"
           (Types.Cert_request
              { req_id = 42; trace_id = 0; replica = "r42b"; start_version = 0; replica_version = 0;
                oldest_snapshot = 0;
                writeset = ws "a" 1 });
         match Mailbox.recv mb with
         | Types.Cert_reply r -> second := Some r
         | _ -> ()));
  Engine.run ~until:(Time.sec 4) engine;
  (match (!r1, !second) with
  | Some a, Some b ->
      check_int "same version on retry" a.commit_version b.commit_version
  | _ -> Alcotest.fail "both replies expected");
  check_int "log has exactly one entry" 1 (Certifier.system_version cert)

let test_certifier_remotes_annotated () =
  (* Two sequential commits on the same key from r1; a later request from
     r2 receives both as remotes, the second annotated with the conflict. *)
  let engine = Engine.create () in
  let net = fast_net engine in
  let cert = one_node_certifier engine net in
  Engine.run ~until:(Time.sec 2) engine;
  ignore (certify_via engine net cert ~req_id:1 ~start_version:0 ~replica_version:0 (ws "x" 1));
  Engine.run ~until:(Time.sec 3) engine;
  ignore (certify_via engine net cert ~req_id:2 ~start_version:1 ~replica_version:1 (ws "x" 2));
  Engine.run ~until:(Time.sec 4) engine;
  let r3 = certify_via engine net cert ~req_id:3 ~start_version:2 ~replica_version:0 (ws "y" 1) in
  Engine.run ~until:(Time.sec 5) engine;
  match !r3 with
  | Some { decision = Types.Commit; remotes; _ } -> (
      match remotes with
      | [ a; b ] ->
          check_int "first remote is version 1" 1 a.Types.version;
          check_int "second remote is version 2" 2 b.Types.version;
          Alcotest.(check (option int)) "no conflict below v1" None a.conflict_with;
          Alcotest.(check (option int)) "v2 conflicts with v1" (Some 1) b.conflict_with
      | _ -> Alcotest.fail "expected two remotes")
  | _ -> Alcotest.fail "expected commit with remotes"

let test_certifier_nocert_mode_no_disk () =
  let engine = Engine.create () in
  let net = fast_net engine in
  let cert =
    one_node_certifier ~config:{ Certifier.default_config with durable = false } engine net
  in
  Engine.run ~until:(Time.sec 2) engine;
  (* discard the election's promise fsync; certification must add none *)
  Certifier.reset_stats cert;
  let replied_at = ref Time.zero in
  let mb = Net.Network.register net "rq" in
  ignore
    (Engine.spawn engine (fun () ->
         let sent = Engine.now engine in
         Net.Network.send net ~src:"rq" ~dst:"cert0"
           (Types.Cert_request
              { req_id = 1; trace_id = 0; replica = "rq"; start_version = 0; replica_version = 0;
                oldest_snapshot = 0;
                writeset = ws "a" 1 });
         (match Mailbox.recv mb with Types.Cert_reply _ -> () | _ -> ());
         replied_at := Time.diff (Engine.now engine) sent));
  Engine.run ~until:(Time.sec 3) engine;
  check_bool "no-durability reply is sub-millisecond" true
    Time.(!replied_at < Time.of_ms 1.);
  let stats = Certifier.stats cert in
  check_int "nothing written to the log disk" 0 stats.log_fsyncs;
  check_int "but certified and committed" 1 stats.commits

let test_certifier_forced_abort_counted () =
  let engine = Engine.create () in
  let net = fast_net engine in
  let cert =
    one_node_certifier
      ~config:{ Certifier.default_config with forced_abort_rate = 1.0 }
      engine net
  in
  Engine.run ~until:(Time.sec 2) engine;
  let r = certify_via engine net cert ~req_id:1 ~start_version:0 ~replica_version:0 (ws "a" 1) in
  Engine.run ~until:(Time.sec 3) engine;
  (match !r with
  | Some { decision = Types.Abort Types.Forced; _ } -> ()
  | _ -> Alcotest.fail "expected forced abort");
  check_int "forced abort counted" 1 (Certifier.stats cert).aborts_forced;
  check_int "log unchanged" 0 (Certifier.system_version cert)

(* One replica certifying sequentially, reporting its oldest active
   snapshot as it goes: the certifier's watermark must follow the reports
   and truncate the certified log behind them. *)
let test_certifier_watermark_truncates () =
  let engine = Engine.create () in
  let net = fast_net engine in
  let cert = one_node_certifier engine net in
  Engine.run ~until:(Time.sec 2) engine;
  let mb = Net.Network.register net "rA" in
  let floors = ref [] in
  ignore
    (Engine.spawn engine (fun () ->
         for i = 1 to 5 do
           Net.Network.send net ~src:"rA" ~dst:"cert0"
             (Types.Cert_request
                {
                  req_id = i;
                  trace_id = 0;
                  replica = "rA";
                  start_version = i - 1;
                  replica_version = i - 1;
                  oldest_snapshot = i - 1;
                  writeset = ws "a" i;
                });
           match Mailbox.recv mb with
           | Types.Cert_reply r -> floors := r.gc_floor :: !floors
           | _ -> ()
         done));
  Engine.run ~until:(Time.sec 5) engine;
  let log = Certifier.log cert in
  check_int "five commits" 5 (Cert_log.version log);
  check_int "floor follows the reports" 4 (Cert_log.floor log);
  check_int "one live entry" 1 (Cert_log.entries log);
  check_int "prefix pruned" 4 (Cert_log.pruned log);
  check_bool "floor gossiped in commit replies" true
    (List.exists (fun f -> f > 0) !floors);
  (* the decided table survives truncation: still the durability witness
     for every pruned slot *)
  for i = 1 to 5 do
    check_bool "decided survives truncation" true
      (Certifier.decided_version cert ~req_id:i = Some i)
  done

(* A fetch whose start lies below the truncation floor is answered with a
   full snapshot transfer (base rows at the floor) plus the live entries
   above it — never by reading freed slots. *)
let test_certifier_fetch_below_floor_snapshot () =
  let engine = Engine.create () in
  let net = fast_net engine in
  let cert = one_node_certifier engine net in
  Engine.run ~until:(Time.sec 2) engine;
  let mb = Net.Network.register net "rA" in
  ignore
    (Engine.spawn engine (fun () ->
         for i = 1 to 5 do
           Net.Network.send net ~src:"rA" ~dst:"cert0"
             (Types.Cert_request
                {
                  req_id = i;
                  trace_id = 0;
                  replica = "rA";
                  start_version = i - 1;
                  replica_version = i - 1;
                  oldest_snapshot = i - 1;
                  writeset = ws (string_of_int i) i;
                });
           match Mailbox.recv mb with Types.Cert_reply _ -> () | _ -> ()
         done));
  Engine.run ~until:(Time.sec 5) engine;
  check_int "floor advanced" 4 (Cert_log.floor (Certifier.log cert));
  let fetch ~from_version =
    let name = Printf.sprintf "stale%d" from_version in
    let fmb = Net.Network.register net name in
    let got = ref None in
    ignore
      (Engine.spawn engine (fun () ->
           Net.Network.send net ~src:name ~dst:"cert0"
             (Types.Fetch_request
                {
                  fetch_req_id = 100 + from_version;
                  fetch_replica = name;
                  from_version;
                  fetch_oldest_snapshot = from_version;
                });
           match Mailbox.recv fmb with
           | Types.Fetch_reply r -> got := Some r
           | _ -> ()));
    Engine.run ~until:(Time.add (Engine.now engine) (Time.sec 1)) engine;
    match !got with Some r -> r | None -> Alcotest.fail "no fetch reply"
  in
  let stale = fetch ~from_version:1 in
  (match stale.fetch_snapshot with
  | Some snap ->
      check_int "snapshot at the floor" 4 snap.snap_version;
      check_bool "snapshot covers a truncated write" true
        (List.exists
           (fun (key, v) ->
             Mvcc.Key.equal key (k "3") && v = Some (Mvcc.Value.int 3))
           snap.rows)
  | None -> Alcotest.fail "below-floor fetch must carry a snapshot");
  check_int "remotes resume above the floor" 1 (List.length stale.fetch_remotes);
  check_int "floor gossiped" 4 stale.fetch_gc_floor;
  (* a fetch at or above the floor needs no snapshot *)
  let fresh = fetch ~from_version:4 in
  check_bool "no snapshot above the floor" true (fresh.fetch_snapshot = None);
  check_int "just the missing entry" 1 (List.length fresh.fetch_remotes)

(* ------------------------------------------------------------------ *)
(* Property tests: locks single-holder invariant; store last-write-wins *)

let prop_locks_single_holder =
  QCheck.Test.make ~name:"locks: one holder per key, no lost grants" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let l = Mvcc.Locks.create () in
      let holders : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let keys = [| "a"; "b"; "c" |] in
      let active = ref [] in
      let ok = ref true in
      for txid = 1 to 40 do
        let key_name = Rng.pick rng keys in
        let key = k key_name in
        (match Mvcc.Locks.acquire l txid key with
        | Mvcc.Locks.Granted ->
            (match Hashtbl.find_opt holders key_name with
            | Some other when other <> txid -> ok := false
            | _ -> ());
            Hashtbl.replace holders key_name txid;
            active := txid :: !active
        | Mvcc.Locks.Would_block holder ->
            if Hashtbl.find_opt holders key_name <> Some holder then ok := false
        | Mvcc.Locks.Deadlock _ -> ());
        (* randomly release someone *)
        if Rng.chance rng 0.4 && !active <> [] then begin
          let victim = Rng.pick rng (Array.of_list !active) in
          active := List.filter (fun t -> t <> victim) !active;
          let grants = Mvcc.Locks.release_all l victim in
          Hashtbl.iter
            (fun key_name h -> if h = victim then Hashtbl.remove holders key_name)
            (Hashtbl.copy holders);
          List.iter
            (fun (gk, new_holder) -> Hashtbl.replace holders (gk : Mvcc.Key.t).row new_holder)
            grants
        end
      done;
      (* final check: recorded holders match the lock table *)
      Hashtbl.iter
        (fun key_name h ->
          if Mvcc.Locks.holder l (k key_name) <> Some h then ok := false)
        holders;
      !ok)

let prop_store_last_write_wins =
  QCheck.Test.make ~name:"store: read_latest equals the last committed write" ~count:100
    QCheck.(small_list (pair (int_range 0 5) small_int))
    (fun writes ->
      let s = Mvcc.Store.create () in
      let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
      List.iteri
        (fun i (row, value) ->
          Mvcc.Store.install s ~version:(i + 1)
            (Mvcc.Writeset.singleton (k (string_of_int row))
               (Mvcc.Writeset.Update (Mvcc.Value.int value)));
          Hashtbl.replace last row value)
        writes;
      Hashtbl.fold
        (fun row value acc ->
          acc
          && Mvcc.Store.read_latest s (k (string_of_int row))
             = Some (Mvcc.Value.int value))
        last true)


(* ------------------------------------------------------------------ *)
(* Small vocabulary types *)

let test_types_message_bytes_monotone () =
  let small = ws "a" 1 in
  let big =
    Mvcc.Writeset.of_list
      (List.init 20 (fun i -> (k (string_of_int i), Mvcc.Writeset.Update (Mvcc.Value.int i))))
  in
  let req w =
    Types.Cert_request
      { req_id = 1; trace_id = 0; replica = "r"; start_version = 0; replica_version = 0; oldest_snapshot = 0; writeset = w }
  in
  check_bool "bigger writeset, bigger message" true
    (Types.message_bytes (req big) > Types.message_bytes (req small));
  let reply remotes =
    Types.Cert_reply { req_id = 1; decision = Types.Commit; commit_version = 1; gc_floor = 0; remotes }
  in
  check_bool "remotes add bytes" true
    (Types.message_bytes (reply [ { Types.version = 1; ws = big; conflict_with = None } ])
     > Types.message_bytes (reply []));
  check_bool "redirects are small" true
    (Types.message_bytes (Types.Cert_redirect { req_id = 1; leader = None }) < 64)

let test_types_pp () =
  let str pp v = Format.asprintf "%a" pp v in
  check_bool "modes named" true
    (str Types.pp_mode Types.Base = "base"
    && str Types.pp_mode Types.Tashkent_mw = "tashkent-mw"
    && str Types.pp_mode Types.Tashkent_api = "tashkent-api");
  check_bool "decisions named" true
    (str Types.pp_decision Types.Commit = "commit"
    && str Types.pp_decision (Types.Abort Types.Forced) = "abort(forced)")

let test_value_module () =
  check_int "as_int" 7 (Mvcc.Value.as_int (Mvcc.Value.int 7));
  Alcotest.(check string) "as_text of int" "7" (Mvcc.Value.as_text (Mvcc.Value.int 7));
  Alcotest.(check string) "as_text" "hi" (Mvcc.Value.as_text (Mvcc.Value.text "hi"));
  (match Mvcc.Value.as_int (Mvcc.Value.text "x") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "as_int on text must raise");
  check_bool "equal" true (Mvcc.Value.equal (Mvcc.Value.int 1) (Mvcc.Value.int 1));
  check_bool "not equal across kinds" false
    (Mvcc.Value.equal (Mvcc.Value.int 1) (Mvcc.Value.text "1"));
  check_int "text bytes" 5 (Mvcc.Value.encoded_bytes (Mvcc.Value.text "hello"))

let test_key_module () =
  let a = Mvcc.Key.make ~table:"t" ~row:"1" in
  let b = Mvcc.Key.make ~table:"t" ~row:"2" in
  check_bool "ordering by row" true (Mvcc.Key.compare a b < 0);
  check_bool "table dominates" true
    (Mvcc.Key.compare (Mvcc.Key.make ~table:"a" ~row:"9") (Mvcc.Key.make ~table:"b" ~row:"0") < 0);
  Alcotest.(check string) "to_string" "t/1" (Mvcc.Key.to_string a);
  check_bool "hash equal keys" true
    (Mvcc.Key.hash a = Mvcc.Key.hash (Mvcc.Key.make ~table:"t" ~row:"1"))

let test_proxy_failure_pp () =
  let str f = Format.asprintf "%a" Proxy.pp_failure f in
  check_bool "cert conflict" true (str (Proxy.Cert_abort Types.Ww_conflict) <> "");
  check_bool "forced" true (str (Proxy.Cert_abort Types.Forced) <> "");
  check_bool "local" true (str (Proxy.Local_abort Mvcc.Db.Preempted) <> "")

let suites =
  [
    ( "core.cert_client",
      [
        Alcotest.test_case "happy path" `Quick test_cert_client_happy_path;
        Alcotest.test_case "redirect to leader" `Quick test_cert_client_redirect;
        Alcotest.test_case "timeout failover is idempotent" `Quick
          test_cert_client_timeout_failover;
      ] );
    ( "core.certifier_unit",
      [
        Alcotest.test_case "commit then conflict then success" `Quick
          test_certifier_commit_then_conflict;
        Alcotest.test_case "retry is idempotent" `Quick test_certifier_retry_idempotent;
        Alcotest.test_case "remotes carry conflict annotations" `Quick
          test_certifier_remotes_annotated;
        Alcotest.test_case "no-durability mode skips disk" `Quick
          test_certifier_nocert_mode_no_disk;
        Alcotest.test_case "forced aborts counted, not logged" `Quick
          test_certifier_forced_abort_counted;
        Alcotest.test_case "watermark truncates behind the reports" `Quick
          test_certifier_watermark_truncates;
        Alcotest.test_case "below-floor fetch gets a snapshot" `Quick
          test_certifier_fetch_below_floor_snapshot;
      ] );
    ( "core.vocabulary",
      [
        Alcotest.test_case "message bytes monotone" `Quick test_types_message_bytes_monotone;
        Alcotest.test_case "pretty printers" `Quick test_types_pp;
        Alcotest.test_case "value module" `Quick test_value_module;
        Alcotest.test_case "key module" `Quick test_key_module;
        Alcotest.test_case "proxy failure pp" `Quick test_proxy_failure_pp;
      ] );
    ( "core.properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_locks_single_holder; prop_store_last_write_wins ] );
  ]

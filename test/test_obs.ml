(* Tests for the observability layer: the metrics registry (naming,
   snapshot-vs-reset isolation, gauges, on_reset hooks) and the lifecycle
   tracer (span ordering under the sim clock, ring wraparound, Chrome
   trace JSON shape), plus integration with the cluster/harness so trace
   ids demonstrably survive certify retries and fetch backfills. *)

open Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_counter_snapshot_reset () =
  let reg = Obs.Registry.create () in
  let a = Obs.Registry.counter reg "proxy.r0.commits" in
  let b = Obs.Registry.counter reg "proxy.r0.aborts" in
  Stats.Counter.incr a;
  Stats.Counter.incr a;
  Stats.Counter.incr b;
  check_int "size" 2 (Obs.Registry.size reg);
  (match Obs.Registry.find reg "proxy.r0.commits" with
  | Some (Obs.Registry.Counter n) -> check_int "commits read" 2 n
  | _ -> Alcotest.fail "commits not a counter");
  (* Snapshot is a point-in-time read, sorted by name. *)
  let snap = Obs.Registry.snapshot reg in
  check_int "snapshot length" 2 (List.length snap);
  check_string "sorted first" "proxy.r0.aborts" (fst (List.hd snap));
  Stats.Counter.incr a;
  (match List.assoc "proxy.r0.commits" snap with
  | Obs.Registry.Counter n -> check_int "old snapshot unchanged" 2 n
  | _ -> Alcotest.fail "not a counter");
  (* Reset zeroes the live handles; the old snapshot is unaffected. *)
  Obs.Registry.reset reg;
  check_int "live counter zeroed" 0 (Stats.Counter.value a);
  (match List.assoc "proxy.r0.commits" snap with
  | Obs.Registry.Counter n -> check_int "snapshot isolated from reset" 2 n
  | _ -> Alcotest.fail "not a counter")

let test_registry_duplicate_raises () =
  let reg = Obs.Registry.create () in
  ignore (Obs.Registry.counter reg "x.y");
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Obs.Registry: duplicate metric \"x.y\"") (fun () ->
      ignore (Obs.Registry.counter reg "x.y"));
  (* The clash is cross-kind too: one namespace for all metric types. *)
  Alcotest.check_raises "duplicate across kinds"
    (Invalid_argument "Obs.Registry: duplicate metric \"x.y\"") (fun () ->
      Obs.Registry.gauge reg "x.y" (fun () -> 0.))

let test_registry_gauge_and_on_reset () =
  let reg = Obs.Registry.create () in
  let cum = ref 10. in
  Obs.Registry.gauge reg "wal.fsyncs" (fun () -> !cum);
  let c = Obs.Registry.counter reg "commits" in
  let hook_log = ref [] in
  Obs.Registry.on_reset reg (fun () -> hook_log := "first" :: !hook_log);
  Obs.Registry.on_reset reg (fun () -> hook_log := "second" :: !hook_log);
  Stats.Counter.incr c;
  cum := 42.;
  (match Obs.Registry.find reg "wal.fsyncs" with
  | Some (Obs.Registry.Gauge g) -> check_bool "gauge reads live" true (g = 42.)
  | _ -> Alcotest.fail "not a gauge");
  Obs.Registry.reset reg;
  (* Counters are zeroed, gauges are untouched, hooks run in order. *)
  check_int "counter zeroed" 0 (Stats.Counter.value c);
  (match Obs.Registry.find reg "wal.fsyncs" with
  | Some (Obs.Registry.Gauge g) -> check_bool "gauge survives reset" true (g = 42.)
  | _ -> Alcotest.fail "not a gauge");
  check_bool "hooks ran in registration order" true
    (List.rev !hook_log = [ "first"; "second" ])

let test_registry_summary_and_histogram () =
  let reg = Obs.Registry.create () in
  let s = Obs.Registry.summary reg "batch_size" in
  let h = Obs.Registry.histogram reg "latency_us" in
  Stats.Summary.observe s 2.;
  Stats.Summary.observe s 4.;
  for _ = 1 to 100 do
    Stats.Histogram.observe h 1000.
  done;
  (match Obs.Registry.find reg "batch_size" with
  | Some (Obs.Registry.Summary { count; mean; min; max }) ->
      check_int "summary count" 2 count;
      check_bool "summary mean" true (mean = 3.);
      check_bool "summary min/max" true (min = 2. && max = 4.)
  | _ -> Alcotest.fail "not a summary");
  match Obs.Registry.find reg "latency_us" with
  | Some (Obs.Registry.Histogram { count; p50; p99; _ }) ->
      check_int "histogram count" 100 count;
      (* Exponential buckets: percentiles are bucket midpoints near 1000. *)
      check_bool "p50 near 1ms" true (p50 > 900. && p50 < 1100.);
      check_bool "p99 near 1ms" true (p99 > 900. && p99 < 1100.)
  | _ -> Alcotest.fail "not a histogram"

(* ------------------------------------------------------------------ *)
(* Tracer *)

let test_trace_span_ordering () =
  let e = Engine.create () in
  let trace = Obs.Trace.create e in
  ignore
    (Engine.spawn e ~name:"tx" (fun () ->
         let outer =
           Obs.Trace.span trace ~id:(Obs.Trace.fresh_id trace) ~stage:"txn.commit"
             ~actor:"replica0" ()
         in
         Engine.sleep e (Time.us 50);
         let inner =
           Obs.Trace.span trace ~id:1 ~stage:"certify" ~actor:"replica0" ()
         in
         Engine.sleep e (Time.us 100);
         Obs.Trace.finish trace inner;
         Engine.sleep e (Time.us 25);
         Obs.Trace.finish trace outer));
  Engine.run e;
  check_int "two spans recorded" 2 (Obs.Trace.recorded trace);
  match Obs.Trace.events trace with
  | [ first; second ] ->
      (* Events land in finish order: the nested span closes first. *)
      check_string "inner finishes first" "certify" first.Obs.Trace.stage;
      check_string "outer finishes last" "txn.commit" second.Obs.Trace.stage;
      check_int "shared trace id" first.Obs.Trace.id second.Obs.Trace.id;
      check_int "inner start" 50 (Time.to_us first.Obs.Trace.started);
      check_int "inner duration" 100
        Time.(to_us (diff first.Obs.Trace.finished first.Obs.Trace.started));
      check_int "outer spans the whole tx" 175
        Time.(to_us (diff second.Obs.Trace.finished second.Obs.Trace.started));
      (* Nesting: the outer interval contains the inner one. *)
      check_bool "outer contains inner" true
        Time.(
          second.Obs.Trace.started <= first.Obs.Trace.started
          && first.Obs.Trace.finished <= second.Obs.Trace.finished)
  | evs -> Alcotest.fail (Printf.sprintf "expected 2 events, got %d" (List.length evs))

let test_trace_ring_wraparound () =
  let e = Engine.create () in
  let trace = Obs.Trace.create ~capacity:4 e in
  for _ = 1 to 6 do
    let sp =
      Obs.Trace.span trace ~id:(Obs.Trace.fresh_id trace) ~stage:"certify"
        ~actor:"r0" ()
    in
    Obs.Trace.finish trace sp
  done;
  check_int "recorded counts all" 6 (Obs.Trace.recorded trace);
  check_int "dropped = overflow" 2 (Obs.Trace.dropped trace);
  let evs = Obs.Trace.events trace in
  check_int "ring retains capacity" 4 (List.length evs);
  (* Oldest two spans (ids 1,2) were overwritten; survivors in order. *)
  check_bool "oldest dropped, order kept" true
    (List.map (fun ev -> ev.Obs.Trace.id) evs = [ 3; 4; 5; 6 ]);
  (* The aggregate histogram still saw every span despite the wrap. *)
  match Obs.Trace.stage_stats trace "certify" with
  | Some st -> check_int "stage stats count all spans" 6 st.Obs.Trace.count
  | None -> Alcotest.fail "stage missing"

let test_trace_disabled_inert () =
  let trace = Obs.Trace.disabled () in
  check_bool "disabled" false (Obs.Trace.enabled trace);
  check_int "fresh_id is 0" 0 (Obs.Trace.fresh_id trace);
  check_int "fresh_id stays 0" 0 (Obs.Trace.fresh_id trace);
  let sp = Obs.Trace.span trace ~id:7 ~stage:"certify" ~actor:"r0" () in
  Obs.Trace.finish trace sp;
  check_int "nothing recorded" 0 (Obs.Trace.recorded trace);
  check_bool "no events" true (Obs.Trace.events trace = []);
  check_bool "no stages" true (Obs.Trace.stages trace = []);
  check_string "empty chrome trace" "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
    (Obs.Trace.to_chrome_json trace)

let test_trace_reset_keeps_ids_ascending () =
  let e = Engine.create () in
  let trace = Obs.Trace.create ~capacity:8 e in
  let id1 = Obs.Trace.fresh_id trace in
  let sp = Obs.Trace.span trace ~id:id1 ~stage:"certify" ~actor:"r0" () in
  Obs.Trace.finish trace sp;
  Obs.Trace.reset trace;
  check_int "ring emptied" 0 (Obs.Trace.recorded trace);
  check_bool "stage stats cleared" true
    ((Option.get (Obs.Trace.stage_stats trace "certify")).Obs.Trace.count = 0);
  let id2 = Obs.Trace.fresh_id trace in
  check_bool "ids keep ascending across reset" true (id2 > id1)

let test_trace_chrome_json_golden () =
  let e = Engine.create () in
  let trace = Obs.Trace.create ~capacity:8 e in
  ignore
    (Engine.spawn e ~name:"tx" (fun () ->
         let a =
           Obs.Trace.span trace ~id:(Obs.Trace.fresh_id trace) ~stage:"certify"
             ~actor:"replica0" ()
         in
         Engine.sleep e (Time.us 100);
         Obs.Trace.finish trace a;
         let b =
           Obs.Trace.span trace ~id:(Obs.Trace.fresh_id trace)
             ~stage:"cert.durability" ~actor:"cert1" ()
         in
         Engine.sleep e (Time.us 50);
         Obs.Trace.finish trace b));
  Engine.run e;
  let expected =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
    ^ "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"replica0\"}},"
    ^ "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\"args\":{\"name\":\"cert1\"}},"
    ^ "{\"name\":\"certify\",\"cat\":\"tashkent\",\"ph\":\"X\",\"ts\":0,\"dur\":100,\"pid\":1,\"tid\":1,\"args\":{\"trace_id\":1,\"actor\":\"replica0\"}},"
    ^ "{\"name\":\"cert.durability\",\"cat\":\"tashkent\",\"ph\":\"X\",\"ts\":100,\"dur\":50,\"pid\":2,\"tid\":2,\"args\":{\"trace_id\":2,\"actor\":\"cert1\"}}"
    ^ "]}"
  in
  check_string "golden chrome trace" expected (Obs.Trace.to_chrome_json trace)

(* ------------------------------------------------------------------ *)
(* Integration: cluster registry namespace and reset *)

let test_cluster_registry_namespace () =
  let cfg = Tashkent.Cluster.default_config Tashkent.Types.Tashkent_mw in
  let cluster =
    Tashkent.Cluster.create { cfg with Tashkent.Cluster.n_replicas = 2; n_certifiers = 3 }
  in
  Tashkent.Cluster.settle cluster;
  let reg = Tashkent.Cluster.metrics cluster in
  let names = List.map fst (Obs.Registry.snapshot reg) in
  let has prefix = List.exists (fun n -> String.starts_with ~prefix n) names in
  check_bool "proxy metrics registered" true (has "proxy.replica0.");
  check_bool "cert_client metrics registered" true (has "cert_client.replica0.");
  check_bool "replica metrics registered" true (has "replica.replica1.");
  check_bool "certifier metrics registered" true (has "certifier.cert0.");
  check_bool "certifier wal metrics registered" true (has "certifier.cert0.wal.");
  check_bool "certifier paxos metrics registered" true (has "certifier.cert0.paxos.");
  check_bool "network metrics registered" true (has "net.");
  (* Settling elects a leader, so messages already flowed. *)
  (match Obs.Registry.find reg "net.messages_delivered" with
  | Some (Obs.Registry.Gauge g) -> check_bool "settle delivered messages" true (g > 0.)
  | _ -> Alcotest.fail "net.messages_delivered missing");
  (* reset_stats goes through the registry and trace now. *)
  Tashkent.Cluster.reset_stats cluster;
  match Obs.Registry.find reg "proxy.replica0.commits" with
  | Some (Obs.Registry.Counter n) -> check_int "reset zeroes counters" 0 n
  | _ -> Alcotest.fail "proxy.replica0.commits missing"

let test_experiment_stage_latency () =
  (* The harness threads a live tracer through when [trace] is set; the
     measured window must yield per-stage aggregates for the paper's
     lifecycle stages, with Base showing a visible durability stage. *)
  let run mode =
    Harness.Experiment.run
      {
        Harness.Experiment.default with
        Harness.Experiment.system = Harness.Experiment.Replicated mode;
        workload = Harness.Experiment.Tpc_b;
        n_replicas = 2;
        warmup = Time.sec 1;
        measure = Time.sec 3;
        trace = true;
      }
  in
  let base = run Tashkent.Types.Base in
  let mw = run Tashkent.Types.Tashkent_mw in
  let stage r name =
    match List.assoc_opt name r.Harness.Experiment.stage_latency with
    | Some (st : Obs.Trace.stage_stats) -> st
    | None -> Alcotest.fail (Printf.sprintf "stage %s missing" name)
  in
  List.iter
    (fun name ->
      check_bool (name ^ " has samples (base)") true ((stage base name).Obs.Trace.count > 0);
      check_bool (name ^ " has samples (mw)") true ((stage mw name).Obs.Trace.count > 0))
    [ "txn.commit"; "certify"; "durability"; "cert.batch"; "wal.fsync" ];
  (* The paper's Figure 7 gap: Base pays a per-commit local fsync in the
     durability stage; Tashkent-MW commits in memory (sub-millisecond). *)
  let base_dur = (stage base "durability").Obs.Trace.p50_us in
  let mw_dur = (stage mw "durability").Obs.Trace.p50_us in
  check_bool
    (Printf.sprintf "base durability p50 (%.0fus) >> mw (%.0fus)" base_dur mw_dur)
    true
    (base_dur > 10. *. Float.max mw_dur 1.)

let test_chaos_trace_ids_survive_faults () =
  (* Full chaos run (leader crash, partition, drop burst) with tracing on:
     spans must stay well-formed, and trace ids must be stable across
     certify retries — every certifier-side durability span carries an id
     minted at some proxy's begin_tx, and no transaction certifies twice. *)
  let cfg =
    { (Harness.Chaos_exp.default_config ()) with Harness.Chaos_exp.collect_trace = true }
  in
  let r = Harness.Chaos_exp.run ~config:cfg () in
  check_bool "no invariant violations" true (r.Harness.Chaos_exp.violations = []);
  check_bool "retries actually happened" true (r.Harness.Chaos_exp.cert_retries > 0);
  let evs = Obs.Trace.events r.Harness.Chaos_exp.trace in
  check_bool "spans recorded" true (evs <> []);
  List.iter
    (fun ev ->
      if Time.(ev.Obs.Trace.finished < ev.Obs.Trace.started) then
        Alcotest.fail ("span finished before it started: " ^ ev.Obs.Trace.stage))
    evs;
  let ids_of stage =
    List.filter_map
      (fun ev ->
        if String.equal ev.Obs.Trace.stage stage then Some ev.Obs.Trace.id else None)
      evs
  in
  let cert_ids = ids_of "certify" in
  (* One certify span per transaction: retries inside Cert_client reuse the
     same request (and trace id) rather than opening a new span. *)
  check_int "certify span ids distinct"
    (List.length cert_ids)
    (List.length (List.sort_uniq compare cert_ids));
  List.iter
    (fun id -> check_bool "certify spans carry real trace ids" true (id > 0))
    cert_ids;
  let dur_ids = List.sort_uniq compare (ids_of "cert.durability") in
  check_bool "certifier durability spans present" true (dur_ids <> []);
  let cert_id_set = List.sort_uniq compare cert_ids in
  let matched =
    List.length (List.filter (fun id -> List.mem id cert_id_set) dur_ids)
  in
  (* Nearly every certifier-side span pairs with a proxy-side certify span;
     the slack covers transactions still in flight when the clock stopped. *)
  check_bool
    (Printf.sprintf "durability ids match certify ids (%d/%d)" matched
       (List.length dur_ids))
    true
    (float_of_int matched >= 0.9 *. float_of_int (List.length dur_ids))

let test_backfill_trace_ids () =
  (* A staleness refresh on an idle replica mints its own trace id and
     records a [backfill] span bracketing the fetch, plus an [apply] span
     (same id) for the applier installing the fetched writesets. *)
  let e = Engine.create () in
  let trace = Obs.Trace.create e in
  let mode = Tashkent.Types.Tashkent_mw in
  let cluster =
    Tashkent.Cluster.create ~engine:e ~trace
      {
        Tashkent.Cluster.mode;
        n_replicas = 2;
        n_certifiers = 3;
        n_partitions = 1;
        hosting = Tashkent.Cluster.Host_all;
        certifier = Tashkent.Certifier.default_config;
        replica =
          {
            (Tashkent.Replica.default_config mode) with
            Tashkent.Replica.staleness_bound = Some (Time.of_ms 200.);
          };
        seed = 7;
      }
  in
  let key = Mvcc.Key.make ~table:"t" ~row:"a" in
  Tashkent.Cluster.load_all cluster [ (key, Mvcc.Value.int 0) ];
  Tashkent.Cluster.settle cluster;
  let p = Tashkent.Replica.proxy (Tashkent.Cluster.replica cluster 0) in
  ignore
    (Engine.spawn e ~name:"client" (fun () ->
         let tx = Tashkent.Proxy.begin_tx p in
         (match Tashkent.Proxy.write p tx key (Mvcc.Writeset.Update (Mvcc.Value.int 1)) with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "write failed");
         match Tashkent.Proxy.commit p tx with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "commit failed"));
  (* Replica 1 never commits, so its refresher must backfill the update. *)
  Engine.run ~until:(Time.add (Engine.now e) (Time.sec 2)) e;
  let evs = Obs.Trace.events trace in
  let spans stage =
    List.filter (fun ev -> String.equal ev.Obs.Trace.stage stage) evs
  in
  let backfills =
    List.filter (fun ev -> String.equal ev.Obs.Trace.actor "replica1") (spans "backfill")
  in
  check_bool "idle replica recorded backfill spans" true (backfills <> []);
  List.iter
    (fun (bf : Obs.Trace.event) ->
      check_bool "backfill has its own trace id" true (bf.Obs.Trace.id > 0))
    backfills;
  (* At least one backfill actually carried remote writesets: its trace id
     reappears on an apply span nested inside the backfill interval. *)
  let applied =
    List.filter
      (fun (ap : Obs.Trace.event) ->
        List.exists
          (fun (bf : Obs.Trace.event) ->
            ap.Obs.Trace.id = bf.Obs.Trace.id
            && String.equal ap.Obs.Trace.actor "replica1"
            && Time.(bf.Obs.Trace.started <= ap.Obs.Trace.started)
            && Time.(ap.Obs.Trace.finished <= bf.Obs.Trace.finished))
          backfills)
      (spans "apply")
  in
  check_bool "apply span shares the backfill's trace id" true (applied <> []);
  (* And the backfill installed the committed value on the idle replica. *)
  match
    Mvcc.Db.read_committed
      (Tashkent.Replica.db (Tashkent.Cluster.replica cluster 1))
      key
  with
  | Some v -> check_bool "value backfilled" true (v = Mvcc.Value.int 1)
  | None -> Alcotest.fail "key missing on idle replica"

(* ------------------------------------------------------------------ *)
(* Online protocol monitors, driven by synthetic event streams: each test
   feeds a hand-built sequence into a fresh monitor and checks exactly
   which invariant fires (or that a legal sequence stays clean). *)

let make_monitor ?progress_bound () =
  let e = Engine.create () in
  let events = Obs.Events.create e in
  let monitor = Obs.Monitor.attach ?progress_bound events in
  (e, events, monitor)

let emit = Obs.Events.emit

let monitor_names m =
  List.map (fun (v : Obs.Monitor.violation) -> v.monitor) (Obs.Monitor.violations m)

let test_monitor_clean_stream () =
  let _e, ev, m = make_monitor () in
  emit ev (Obs.Events.Request_admitted
       { actor = "cert0"; part = 0; origin = "r0"; req_id = 1; replica_version = 0 });
  emit ev (Obs.Events.Log_append
       { actor = "cert0"; part = 0; version = 1; origin = "r0"; req_id = 1; cross = false });
  emit ev (Obs.Events.Durable_ack
       { actor = "cert0"; part = 0; origin = "r0"; req_id = 1; version = 1 });
  emit ev (Obs.Events.Verdict
       { actor = "cert0"; part = 0; origin = "r0"; req_id = 1; committed = true; version = 1 });
  emit ev (Obs.Events.Ws_install { actor = "r0#p0"; part = 0; version = 1 });
  emit ev (Obs.Events.Snapshot_advance { actor = "r0#p0"; part = 0; version = 1 });
  emit ev (Obs.Events.Gc_floor { actor = "cert0"; part = 0; floor = 1 });
  Obs.Monitor.finalize m ~now:(Time.sec 1);
  check_int "clean" 0 (Obs.Monitor.violation_count m);
  check_int "events counted" 7 (Obs.Monitor.events_seen m)

let test_monitor_serial_order_double_install () =
  let _e, ev, m = make_monitor () in
  emit ev (Obs.Events.Ws_install { actor = "r0#p0"; part = 0; version = 1 });
  emit ev (Obs.Events.Ws_install { actor = "r0#p0"; part = 0; version = 1 });
  check_int "flagged" 1 (Obs.Monitor.violation_count m);
  check_bool "serial-order" true (monitor_names m = [ "serial-order" ])

let test_monitor_serial_order_gap () =
  let _e, ev, m = make_monitor () in
  emit ev (Obs.Events.Ws_install { actor = "r0#p0"; part = 0; version = 1 });
  emit ev (Obs.Events.Ws_install { actor = "r0#p0"; part = 0; version = 2 });
  emit ev (Obs.Events.Ws_install { actor = "r0#p0"; part = 0; version = 4 });
  emit ev (Obs.Events.Snapshot_advance { actor = "r0#p0"; part = 0; version = 2 });
  check_int "contiguous prefix clean" 0 (Obs.Monitor.violation_count m);
  (* Advancing visibility over the uninstalled v=3 is the violation the
     seed-11 stale re-answer produced. *)
  emit ev (Obs.Events.Snapshot_advance { actor = "r0#p0"; part = 0; version = 4 });
  check_int "gap flagged" 1 (Obs.Monitor.violation_count m);
  (* And the snapshot must never go backwards. *)
  emit ev (Obs.Events.Snapshot_advance { actor = "r0#p0"; part = 0; version = 3 });
  check_int "backwards flagged" 2 (Obs.Monitor.violation_count m)

let test_monitor_snapshot_load_legalizes_jump () =
  let _e, ev, m = make_monitor () in
  emit ev (Obs.Events.Ws_install { actor = "r0#p0"; part = 0; version = 1 });
  emit ev (Obs.Events.Snapshot_advance { actor = "r0#p0"; part = 0; version = 1 });
  (* A state transfer rebases the store: the jump to v=10 is legal, and
     only versions above it need installs from here on. *)
  emit ev (Obs.Events.Snapshot_load { actor = "r0#p0"; part = 0; version = 10 });
  emit ev (Obs.Events.Ws_install { actor = "r0#p0"; part = 0; version = 11 });
  emit ev (Obs.Events.Snapshot_advance { actor = "r0#p0"; part = 0; version = 11 });
  check_int "clean" 0 (Obs.Monitor.violation_count m)

let test_monitor_durability_ack_then_abort () =
  let _e, ev, m = make_monitor () in
  emit ev (Obs.Events.Durable_ack
       { actor = "cert0"; part = 0; origin = "r0"; req_id = 7; version = 3 });
  emit ev (Obs.Events.Verdict
       { actor = "cert1"; part = 0; origin = "r0"; req_id = 7; committed = false; version = 0 });
  check_bool "durability" true (monitor_names m = [ "durability" ])

let test_monitor_durability_recovery_reappend () =
  let _e, ev, m = make_monitor () in
  emit ev (Obs.Events.Log_append
       { actor = "cert0"; part = 0; version = 1; origin = "a"; req_id = 1; cross = false });
  emit ev (Obs.Events.Log_append
       { actor = "cert0"; part = 0; version = 2; origin = "r0"; req_id = 7; cross = false });
  emit ev (Obs.Events.Durable_ack
       { actor = "cert0"; part = 0; origin = "r0"; req_id = 7; version = 2 });
  (* Crash: the monitor's per-actor log view resets, recovery redelivers
     from slot 1 — same entries, same versions: clean. *)
  emit ev (Obs.Events.Node_crash { actor = "cert0" });
  emit ev (Obs.Events.Log_append
       { actor = "cert0"; part = 0; version = 1; origin = "a"; req_id = 1; cross = false });
  emit ev (Obs.Events.Log_append
       { actor = "cert0"; part = 0; version = 2; origin = "r0"; req_id = 7; cross = false });
  check_int "faithful recovery clean" 0 (Obs.Monitor.violation_count m);
  (* A second recovery that hands the acked commit's version to some other
     transaction has lost it: flagged. *)
  emit ev (Obs.Events.Node_crash { actor = "cert0" });
  emit ev (Obs.Events.Log_append
       { actor = "cert0"; part = 0; version = 1; origin = "a"; req_id = 1; cross = false });
  emit ev (Obs.Events.Log_append
       { actor = "cert0"; part = 0; version = 2; origin = "r0"; req_id = 8; cross = false });
  check_bool "lost acked commit flagged" true
    (List.mem "durability" (monitor_names m))

let test_monitor_cross_atomicity () =
  let _e, ev, m = make_monitor () in
  emit ev (Obs.Events.Prepared { actor = "cert0"; part = 0; gtx = "g1"; vote = false });
  emit ev (Obs.Events.Decision { actor = "cert3"; part = 1; gtx = "g1"; committed = true });
  check_bool "commit over abort vote" true
    (List.mem "cross-atomicity" (monitor_names m));
  let _e, ev, m = make_monitor () in
  emit ev (Obs.Events.Decision { actor = "cert0"; part = 0; gtx = "g2"; committed = true });
  emit ev (Obs.Events.Decision { actor = "cert3"; part = 1; gtx = "g2"; committed = false });
  check_bool "split decision" true
    (List.mem "cross-atomicity" (monitor_names m))

let test_monitor_gc_floor () =
  let _e, ev, m = make_monitor () in
  emit ev (Obs.Events.Request_admitted
       { actor = "cert0"; part = 0; origin = "r2"; req_id = 5; replica_version = 3 });
  emit ev (Obs.Events.Gc_floor { actor = "cert0"; part = 0; floor = 5 });
  check_bool "floor over live snapshot" true
    (List.mem "gc-floor" (monitor_names m));
  let _e, ev, m = make_monitor () in
  emit ev (Obs.Events.Gc_floor { actor = "cert0"; part = 0; floor = 5 });
  emit ev (Obs.Events.Gc_floor { actor = "cert0"; part = 0; floor = 4 });
  check_bool "floor went backwards" true
    (List.mem "gc-floor" (monitor_names m))

let test_monitor_progress () =
  let _e, ev, m = make_monitor ~progress_bound:(Time.sec 5) () in
  emit ev (Obs.Events.Tx_submitted { actor = "r0#p0"; tx = 1 });
  emit ev (Obs.Events.Tx_submitted { actor = "r0#p0"; tx = 2 });
  emit ev (Obs.Events.Tx_resolved { actor = "r0#p0"; tx = 1; committed = true });
  Obs.Monitor.finalize m ~now:(Time.sec 30);
  (* tx 1 resolved; tx 2 is stuck past the bound. *)
  check_int "one overdue" 1 (Obs.Monitor.violation_count m);
  check_bool "progress" true (monitor_names m = [ "progress" ]);
  (* An actor reset (proxy pause cancels its clients) clears obligations. *)
  let _e, ev, m = make_monitor ~progress_bound:(Time.sec 5) () in
  emit ev (Obs.Events.Tx_submitted { actor = "r0#p0"; tx = 1 });
  emit ev (Obs.Events.Actor_reset { actor = "r0#p0" });
  Obs.Monitor.finalize m ~now:(Time.sec 30);
  check_int "reset clears pending" 0 (Obs.Monitor.violation_count m)

let test_monitor_registry_gauges () =
  let e = Engine.create () in
  let events = Obs.Events.create e in
  let reg = Obs.Registry.create () in
  let m = Obs.Monitor.attach ~metrics:reg events in
  emit events (Obs.Events.Ws_install { actor = "r0#p0"; part = 0; version = 1 });
  emit events (Obs.Events.Ws_install { actor = "r0#p0"; part = 0; version = 1 });
  ignore m;
  (match Obs.Registry.find reg "monitor.violations" with
  | Some (Obs.Registry.Gauge v) -> check_int "violations gauge" 1 (int_of_float v)
  | _ -> Alcotest.fail "monitor.violations gauge missing");
  match Obs.Registry.find reg "monitor.events" with
  | Some (Obs.Registry.Gauge v) -> check_int "events gauge" 2 (int_of_float v)
  | _ -> Alcotest.fail "monitor.events gauge missing"

let suites =
  [
    ( "obs.registry",
      [
        Alcotest.test_case "counter snapshot and reset isolation" `Quick
          test_registry_counter_snapshot_reset;
        Alcotest.test_case "duplicate name raises" `Quick test_registry_duplicate_raises;
        Alcotest.test_case "gauges and on_reset hooks" `Quick
          test_registry_gauge_and_on_reset;
        Alcotest.test_case "summary and histogram snapshots" `Quick
          test_registry_summary_and_histogram;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "span ordering and nesting on the sim clock" `Quick
          test_trace_span_ordering;
        Alcotest.test_case "ring wraparound keeps exact aggregates" `Quick
          test_trace_ring_wraparound;
        Alcotest.test_case "disabled tracer is inert" `Quick test_trace_disabled_inert;
        Alcotest.test_case "reset keeps ids ascending" `Quick
          test_trace_reset_keeps_ids_ascending;
        Alcotest.test_case "chrome trace JSON golden shape" `Quick
          test_trace_chrome_json_golden;
      ] );
    ( "obs.integration",
      [
        Alcotest.test_case "cluster registry namespace and reset" `Quick
          test_cluster_registry_namespace;
        Alcotest.test_case "experiment per-stage latency (Figure 7 gap)" `Slow
          test_experiment_stage_latency;
        Alcotest.test_case "backfill spans share the refresh trace id" `Quick
          test_backfill_trace_ids;
        Alcotest.test_case "chaos: trace ids survive retries and faults" `Slow
          test_chaos_trace_ids_survive_faults;
      ] );
    ( "obs.monitor",
      [
        Alcotest.test_case "clean stream stays clean" `Quick
          test_monitor_clean_stream;
        Alcotest.test_case "serial-order: double install" `Quick
          test_monitor_serial_order_double_install;
        Alcotest.test_case "serial-order: advance over gap" `Quick
          test_monitor_serial_order_gap;
        Alcotest.test_case "serial-order: snapshot load legalizes jump" `Quick
          test_monitor_snapshot_load_legalizes_jump;
        Alcotest.test_case "durability: acked then aborted" `Quick
          test_monitor_durability_ack_then_abort;
        Alcotest.test_case "durability: recovery re-append" `Quick
          test_monitor_durability_recovery_reappend;
        Alcotest.test_case "cross-atomicity: vote/decision conflicts" `Quick
          test_monitor_cross_atomicity;
        Alcotest.test_case "gc-floor: live snapshot and monotonicity" `Quick
          test_monitor_gc_floor;
        Alcotest.test_case "progress: overdue and reset" `Quick
          test_monitor_progress;
        Alcotest.test_case "registry gauges exported" `Quick
          test_monitor_registry_gauges;
      ] );
  ]

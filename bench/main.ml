(* Regenerates every table and figure of the paper's evaluation (§9).

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --quick      -- fewer points, shorter runs
     dune exec bench/main.exe -- --only fig4,fig14,recovery
     dune exec bench/main.exe -- --list       -- available sections *)

open Harness

let quick = ref false
let only : string list ref = ref []
let seconds = ref 10.
let list_only = ref false

let all_sections =
  [
    "fig4"; "fig6"; "fig8"; "fig10"; "fig12"; "fig14"; "standalone"; "recovery";
    "ablation"; "micro"; "chaos"; "storage_chaos"; "latency"; "parallel_apply";
    "hotkey"; "soak"; "partition"; "monitor";
  ]

(* Machine-readable metrics for regression tracking, written to
   BENCH_micro.json after all requested sections ran: micro-benchmark
   ns/op plus the chaos fault/recovery counters. *)
let json_metrics : (string * float) list ref = ref []
let record_metric name v = json_metrics := (name, v) :: !json_metrics

let write_json () =
  let metrics = List.rev !json_metrics in
  let oc = open_out "BENCH_micro.json" in
  output_string oc "{\n";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "  %S: %s%s\n" name
        (if Float.is_nan v then "null" else Printf.sprintf "%.1f" v)
        (if i = List.length metrics - 1 then "" else ","))
    metrics;
  output_string oc "}\n";
  close_out oc;
  Report.kv "BENCH_micro.json" "written"

let () =
  let set_only s = only := String.split_on_char ',' s in
  Arg.parse
    [
      ("--quick", Arg.Set quick, " fewer replica counts and shorter windows");
      ("--only", Arg.String set_only, "SECTIONS comma-separated subset to run");
      ("--seconds", Arg.Set_float seconds, "S measurement window per point (default 10)");
      ("--list", Arg.Set list_only, " list section names and exit");
    ]
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "tashkent benchmark harness"

let wants name = !only = [] || List.mem name !only

let replicas () = if !quick then [ 1; 4; 8; 15 ] else [ 1; 2; 4; 6; 8; 10; 12; 15 ]
let abort_replicas () = if !quick then [ 2; 8; 15 ] else [ 1; 2; 4; 8; 12; 15 ]

let measure () = Sim.Time.of_sec (if !quick then Float.min !seconds 6. else !seconds)
let warmup () = Sim.Time.of_sec (if !quick then 3. else 4.)

let base_cfg workload io =
  {
    Experiment.default with
    Experiment.workload;
    io;
    warmup = warmup ();
    measure = measure ();
  }

let systems_for = function
  | Experiment.All_updates | Experiment.Tpc_b ->
      [
        Experiment.Replicated Tashkent.Types.Base;
        Experiment.Replicated Tashkent.Types.Tashkent_api;
        Experiment.Replicated_nocert Tashkent.Types.Tashkent_api;
        Experiment.Replicated Tashkent.Types.Tashkent_mw;
      ]
  | Experiment.Tpc_w ->
      [
        Experiment.Replicated Tashkent.Types.Base;
        Experiment.Replicated Tashkent.Types.Tashkent_api;
        Experiment.Replicated Tashkent.Types.Tashkent_mw;
      ]
  | Experiment.Hotkey | Experiment.Part_local ->
      (* these sections sweep their own knobs (deltas, partitions) rather
         than systems *)
      [ Experiment.Replicated Tashkent.Types.Tashkent_mw ]

let io_name = function
  | Tashkent.Replica.Shared_io -> "shared IO"
  | Tashkent.Replica.Dedicated_io -> "dedicated IO"

(* Run one (workload, io) sweep over systems x replica counts. *)
let sweep workload io =
  let results = Hashtbl.create 64 in
  List.iter
    (fun system ->
      List.iter
        (fun n ->
          let cfg = { (base_cfg workload io) with Experiment.system; n_replicas = n } in
          let r = Experiment.run cfg in
          Hashtbl.replace results (Experiment.system_name system, n) r)
        (replicas ()))
    (systems_for workload);
  results

let get results sys n : Experiment.result = Hashtbl.find results (sys, n)

let print_throughput_table ~title ~workload results =
  Report.subsection title;
  let syss = List.map Experiment.system_name (systems_for workload) in
  let t = Report.table ~columns:("replicas" :: syss) in
  List.iter
    (fun n ->
      Report.row t
        (string_of_int n :: List.map (fun s -> Report.f1 (get results s n).goodput) syss))
    (replicas ());
  Report.print t

let print_response_table ~title ~workload results =
  Report.subsection title;
  let syss = List.map Experiment.system_name (systems_for workload) in
  let t = Report.table ~columns:("replicas" :: syss) in
  List.iter
    (fun n ->
      Report.row t
        (string_of_int n :: List.map (fun s -> Report.f1 (get results s n).resp_ms) syss))
    (replicas ());
  Report.print t

let nmax () = List.fold_left max 1 (replicas ())

let speedup results a b n =
  let ga = (get results a n).Experiment.goodput
  and gb = (get results b n).Experiment.goodput in
  if gb <= 0. then 0. else ga /. gb

(* ------------------------------------------------------------------ *)

let fig_allupdates ~io ~figt ~figr ~paper_factors () =
  Report.section (Printf.sprintf "Figures %s & %s: AllUpdates (%s)" figt figr (io_name io));
  let results = sweep Experiment.All_updates io in
  print_throughput_table
    ~title:(Printf.sprintf "Figure %s: throughput (req/sec)" figt)
    ~workload:Experiment.All_updates results;
  print_response_table
    ~title:(Printf.sprintf "Figure %s: response time (ms)" figr)
    ~workload:Experiment.All_updates results;
  let n = nmax () in
  let mw_x, api_x = paper_factors in
  Report.paper_vs
    ~what:(Printf.sprintf "tashkent-mw / base speedup at %d replicas" n)
    ~paper:mw_x
    ~measured:(Printf.sprintf "%.1fx" (speedup results "tashkent-mw" "base" n));
  Report.paper_vs
    ~what:(Printf.sprintf "tashkent-api / base speedup at %d replicas" n)
    ~paper:api_x
    ~measured:(Printf.sprintf "%.1fx" (speedup results "tashkent-api" "base" n));
  Report.paper_vs ~what:"base throughput per replica (req/s)" ~paper:"~49"
    ~measured:(Report.f1 ((get results "base" n).goodput /. float_of_int n));
  Report.paper_vs
    ~what:(Printf.sprintf "writesets per certifier fsync (mw, %d replicas)" n)
    ~paper:"~29"
    ~measured:(Report.f1 (get results "tashkent-mw" n).cert_ws_per_fsync);
  Report.kv
    (Printf.sprintf "entries per Accept broadcast (mw, %d replicas)" n)
    (Printf.sprintf "%.1f mean over %d broadcasts"
       (get results "tashkent-mw" n).cert_mean_accept_batch
       (get results "tashkent-mw" n).cert_accept_broadcasts);
  let two = if List.mem 2 (replicas ()) then 2 else 4 in
  Report.paper_vs ~what:"base response-time jump from 1 to 2 replicas" ~paper:"~2x"
    ~measured:
      (Printf.sprintf "%.1fx"
         (let r1 = (get results "base" 1).resp_ms in
          if r1 <= 0. then 0. else (get results "base" two).resp_ms /. r1))

let fig_tpcb ~io ~figt ~figr () =
  Report.section (Printf.sprintf "Figures %s & %s: TPC-B (%s)" figt figr (io_name io));
  let results = sweep Experiment.Tpc_b io in
  print_throughput_table
    ~title:(Printf.sprintf "Figure %s: throughput (req/sec)" figt)
    ~workload:Experiment.Tpc_b results;
  print_response_table
    ~title:(Printf.sprintf "Figure %s: response time (ms)" figr)
    ~workload:Experiment.Tpc_b results;
  let n = nmax () in
  Report.paper_vs ~what:"tashkent-mw / base speedup" ~paper:"2.6x"
    ~measured:(Printf.sprintf "%.1fx" (speedup results "tashkent-mw" "base" n));
  Report.paper_vs ~what:"tashkent-api / base speedup" ~paper:"1.3x"
    ~measured:(Printf.sprintf "%.1fx" (speedup results "tashkent-api" "base" n));
  Report.paper_vs ~what:"artificial conflict rate (remote writesets)" ~paper:"35%"
    ~measured:(Report.pct (get results "tashkent-api" n).artificial_conflict_pct)

let fig_tpcw () =
  Report.section "Figures 12 & 13: TPC-W shopping mix (shared IO)";
  let io = Tashkent.Replica.Shared_io in
  let results = sweep Experiment.Tpc_w io in
  print_throughput_table ~title:"Figure 12: throughput (tps)" ~workload:Experiment.Tpc_w
    results;
  Report.subsection "Figure 13: response times (ms), update / read-only";
  let syss = List.map Experiment.system_name (systems_for Experiment.Tpc_w) in
  let t =
    Report.table
      ~columns:("replicas" :: List.concat_map (fun s -> [ s ^ " upd"; s ^ " ro" ]) syss)
  in
  List.iter
    (fun n ->
      Report.row t
        (string_of_int n
        :: List.concat_map
             (fun s ->
               let r = get results s n in
               [ Report.f1 r.resp_ms; Report.f1 r.ro_resp_ms ])
             syss))
    (replicas ());
  Report.print t;
  let n = nmax () in
  Report.paper_vs ~what:"base vs tashkent-api throughput" ~paper:"equal"
    ~measured:(Printf.sprintf "%.2fx" (speedup results "tashkent-api" "base" n));
  Report.paper_vs ~what:"tashkent-mw vs base throughput" ~paper:"mw higher"
    ~measured:(Printf.sprintf "%.2fx" (speedup results "tashkent-mw" "base" n));
  Report.paper_vs ~what:"read-only response times across systems" ~paper:"similar"
    ~measured:
      (String.concat " / " (List.map (fun s -> Report.f1 (get results s n).ro_resp_ms) syss))

let fig14 () =
  Report.section "Figure 14: goodput under forced abort rates (dedicated IO)";
  let io = Tashkent.Replica.Dedicated_io in
  let sys_names = [ "tashkent-mw"; "tashkent-api"; "base" ] in
  let system_of = function
    | "tashkent-mw" -> Experiment.Replicated Tashkent.Types.Tashkent_mw
    | "tashkent-api" -> Experiment.Replicated Tashkent.Types.Tashkent_api
    | _ -> Experiment.Replicated Tashkent.Types.Base
  in
  let rates = [ 0.0; 0.2; 0.4 ] in
  let results = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter
        (fun rate ->
          List.iter
            (fun n ->
              let cfg =
                {
                  (base_cfg Experiment.All_updates io) with
                  Experiment.system = system_of s;
                  n_replicas = n;
                  abort_rate = rate;
                }
              in
              Hashtbl.replace results (s, rate, n) (Experiment.run cfg))
            (abort_replicas ()))
        rates)
    sys_names;
  Report.subsection "goodput (committed req/sec)";
  let t =
    Report.table
      ~columns:
        ("replicas"
        :: List.concat_map
             (fun s -> List.map (fun r -> Printf.sprintf "%s@%.0f%%" s (100. *. r)) rates)
             sys_names)
  in
  List.iter
    (fun n ->
      Report.row t
        (string_of_int n
        :: List.concat_map
             (fun s ->
               List.map
                 (fun rate ->
                   Report.f1 (Hashtbl.find results (s, rate, n) : Experiment.result).goodput)
                 rates)
             sys_names))
    (abort_replicas ());
  Report.print t;
  let n = List.fold_left max 1 (abort_replicas ()) in
  let g s rate = (Hashtbl.find results (s, rate, n) : Experiment.result).goodput in
  Report.paper_vs ~what:"ordering at 40% forced aborts" ~paper:"mw > api > base"
    ~measured:
      (Printf.sprintf "%s (%.0f > %.0f > %.0f)"
         (if g "tashkent-mw" 0.4 > g "tashkent-api" 0.4 && g "tashkent-api" 0.4 > g "base" 0.4
          then "holds"
          else "violated")
         (g "tashkent-mw" 0.4) (g "tashkent-api" 0.4) (g "base" 0.4));
  Report.paper_vs ~what:"abort rate actually measured at 40% knob" ~paper:"40%"
    ~measured:
      (Report.pct
         (Hashtbl.find results ("tashkent-mw", 0.4, n) : Experiment.result)
           .abort_rate_measured)

let standalone () =
  Report.section "Section 9.2: standalone vs 1-replica Tashkent-MW";
  let t = Report.table ~columns:[ "config"; "io"; "req/sec"; "resp (ms)" ] in
  let do_one system io =
    let cfg =
      { (base_cfg Experiment.All_updates io) with Experiment.system; n_replicas = 1 }
    in
    let r = Experiment.run cfg in
    Report.row t
      [ Experiment.system_name system; io_name io; Report.f1 r.goodput; Report.f1 r.resp_ms ];
    r
  in
  let s_sh = do_one Experiment.Standalone Tashkent.Replica.Shared_io in
  let m_sh =
    do_one (Experiment.Replicated Tashkent.Types.Tashkent_mw) Tashkent.Replica.Shared_io
  in
  let s_de = do_one Experiment.Standalone Tashkent.Replica.Dedicated_io in
  let m_de =
    do_one (Experiment.Replicated Tashkent.Types.Tashkent_mw) Tashkent.Replica.Dedicated_io
  in
  Report.print t;
  Report.paper_vs ~what:"shared IO: standalone vs 1-replica mw" ~paper:"517 vs 490"
    ~measured:(Printf.sprintf "%.0f vs %.0f" s_sh.goodput m_sh.goodput);
  Report.paper_vs ~what:"dedicated IO: standalone vs 1-replica mw" ~paper:"515 vs 491"
    ~measured:(Printf.sprintf "%.0f vs %.0f" s_de.goodput m_de.goodput);
  Report.paper_vs ~what:"replication overhead at 1 replica" ~paper:"within ~5%"
    ~measured:
      (Printf.sprintf "%.0f%%" (100. *. abs_float (1. -. (m_sh.goodput /. s_sh.goodput))))

let recovery () =
  Report.section "Section 9.6: recovery times (TPC-W, Tashkent-MW, 15 replicas)";
  let r = Recovery_exp.run () in
  Report.kv "system-wide update rate (writesets/s)" (Report.f1 r.update_rate);
  Report.paper_vs ~what:"dump duration" ~paper:"~230 s"
    ~measured:(Printf.sprintf "%.0f s" (Sim.Time.to_sec r.dump_duration));
  Report.paper_vs ~what:"throughput degradation during dump" ~paper:"~13%"
    ~measured:(Report.pct r.dump_degradation);
  Report.paper_vs ~what:"restore from dump" ~paper:"~140 s"
    ~measured:(Printf.sprintf "%.0f s" (Sim.Time.to_sec r.mw_restore_duration));
  Report.paper_vs ~what:"database-internal recovery (base/api)" ~paper:"2-4 s"
    ~measured:(Printf.sprintf "%.1f s" (Sim.Time.to_sec r.db_recovery_duration));
  Report.paper_vs ~what:"writeset replay rate (ws/s)" ~paper:"~900"
    ~measured:
      (Printf.sprintf "%.0f (%d ws in %.2f s)" r.replay_rate r.mw_replayed
         (Sim.Time.to_sec r.mw_replay_duration));
  Report.paper_vs ~what:"certifier log growth" ~paper:"~56 MB/hour"
    ~measured:(Printf.sprintf "%.1f MB/hour" (r.cert_log_bytes_per_hour /. 1.0e6));
  Report.paper_vs ~what:"certifier log bytes per writeset" ~paper:"~275 B"
    ~measured:(Printf.sprintf "%.0f B" r.cert_bytes_per_ws);
  Report.paper_vs ~what:"certifier recovery after 60 s down" ~paper:"~1 s per hour down"
    ~measured:(Printf.sprintf "%.2f s" (Sim.Time.to_sec r.cert_recovery_duration))

let ablation () =
  Report.section "Ablations: the design choices called out in DESIGN.md";
  let run_with ?(system = Experiment.Replicated Tashkent.Types.Base)
      ?(workload = Experiment.All_updates) ?(n = 8) ?(certifiers = 3)
      ?(eager_precert = true) ?(grouping = true) () =
    Experiment.run
      {
        (base_cfg workload Tashkent.Replica.Shared_io) with
        Experiment.system;
        n_replicas = n;
        n_certifiers = certifiers;
        eager_precert;
        group_remote_batches = grouping;
      }
  in
  Report.subsection
    "a) grouping remote writesets (\xc2\xa73): Base with vs without the T1_2_3 batching";
  let grouped = run_with ~grouping:true () in
  let naive = run_with ~grouping:false () in
  let t = Report.table ~columns:[ "variant"; "req/sec"; "resp (ms)"; "db recs/fsync" ] in
  Report.row t
    [ "grouped (2M writes)"; Report.f1 grouped.goodput; Report.f1 grouped.resp_ms;
      Report.f1 grouped.db_ws_per_fsync ];
  Report.row t
    [ "naive (1 tx per writeset)"; Report.f1 naive.goodput; Report.f1 naive.resp_ms;
      Report.f1 naive.db_ws_per_fsync ];
  Report.print t;
  Report.kv "grouping speedup"
    (Printf.sprintf "%.2fx" (if naive.goodput > 0. then grouped.goodput /. naive.goodput else 0.));
  Report.subsection
    "b) eager pre-certification / priority writes (\xc2\xa78.2) vs soft recovery (TPC-B, mw)";
  let eager = run_with ~system:(Experiment.Replicated Tashkent.Types.Tashkent_mw)
      ~workload:Experiment.Tpc_b ~eager_precert:true () in
  let lazy_ = run_with ~system:(Experiment.Replicated Tashkent.Types.Tashkent_mw)
      ~workload:Experiment.Tpc_b ~eager_precert:false () in
  let t = Report.table ~columns:[ "variant"; "req/sec"; "resp (ms)"; "abort rate" ] in
  Report.row t
    [ "priority writes"; Report.f1 eager.goodput; Report.f1 eager.resp_ms;
      Report.pct eager.abort_rate_measured ];
  Report.row t
    [ "queue + soft recovery"; Report.f1 lazy_.goodput; Report.f1 lazy_.resp_ms;
      Report.pct lazy_.abort_rate_measured ];
  Report.print t;
  Report.subsection "c) certifier replication degree (Paxos group size, mw AllUpdates)";
  let t = Report.table ~columns:[ "certifiers"; "req/sec"; "resp (ms)"; "cert recs/fsync" ] in
  List.iter
    (fun k ->
      let r =
        run_with ~system:(Experiment.Replicated Tashkent.Types.Tashkent_mw) ~certifiers:k ()
      in
      Report.row t
        [ string_of_int k; Report.f1 r.goodput; Report.f1 r.resp_ms;
          Report.f1 r.cert_ws_per_fsync ])
    [ 1; 3; 5 ];
  Report.print t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot certification paths. *)

let micro () =
  Report.section "Microbenchmarks (Bechamel): certification hot paths";
  let open Bechamel in
  let key i = Mvcc.Key.make ~table:"t" ~row:(string_of_int i) in
  let ws_of n base =
    Mvcc.Writeset.of_list
      (List.init n (fun i -> (key (base + i), Mvcc.Writeset.Update (Mvcc.Value.int i))))
  in
  let ws_a = ws_of 4 0 and ws_b = ws_of 4 2 and ws_c = ws_of 4 100 in
  let loaded_log =
    let log = Tashkent.Cert_log.create () in
    for v = 1 to 10_000 do
      Tashkent.Cert_log.append log
        { Tashkent.Types.version = v; origin = "r"; req_id = v;
          ws = ws_of 4 (v mod 997); gc_floor = 0; xa = None }
    done;
    log
  in
  let store =
    let s = Mvcc.Store.create () in
    for v = 1 to 10_000 do
      Mvcc.Store.install s ~version:v (ws_of 2 (v mod 997))
    done;
    s
  in
  let loaded_overlay =
    let o = Tashkent.Overlay.create () in
    for v = 1 to 1_000 do
      Tashkent.Overlay.add o
        { Tashkent.Types.version = v; origin = "r"; req_id = v;
          ws = ws_of 4 (v mod 997); gc_floor = 0; xa = None }
    done;
    o
  in
  let tests =
    [
      Test.make ~name:"writeset-intersect-hit"
        (Staged.stage (fun () -> Sys.opaque_identity (Mvcc.Writeset.intersects ws_a ws_b)));
      Test.make ~name:"writeset-intersect-miss"
        (Staged.stage (fun () -> Sys.opaque_identity (Mvcc.Writeset.intersects ws_a ws_c)));
      Test.make ~name:"writeset-add-supersede"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Mvcc.Writeset.add ws_a (key 1) (Mvcc.Writeset.Update (Mvcc.Value.int 9)))));
      Test.make ~name:"certify-vs-10k-log"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Tashkent.Cert_log.certify loaded_log ws_a ~start_version:9_000)));
      Test.make ~name:"overlay-conflict-1k"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Tashkent.Overlay.conflict loaded_overlay ws_a ~start_version:900)));
      Test.make ~name:"store-snapshot-read"
        (Staged.stage (fun () -> Sys.opaque_identity (Mvcc.Store.read store ~at:5_000 (key 10))));
      Test.make ~name:"writeset-union-4+4"
        (Staged.stage (fun () -> Sys.opaque_identity (Mvcc.Writeset.union ws_a ws_b)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let measured = ref [] in
  List.iter
    (fun test ->
      let raws = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let result = Analyze.one ols instance raw in
          let ns =
            match Analyze.OLS.estimates result with
            | Some [ est ] -> est
            | Some _ | None -> nan
          in
          measured := (name, ns) :: !measured;
          Report.kv name (Printf.sprintf "%.1f ns/op" ns))
        raws)
    tests;
  List.iter (fun (name, ns) -> record_metric name ns) (List.rev !measured)

(* ------------------------------------------------------------------ *)
(* Latency breakdown: per-stage lifecycle percentiles from the tracer. *)

let latency () =
  Report.section
    "Latency breakdown: transaction lifecycle stages (TPC-B, 8 replicas)";
  let n = if !quick then 4 else 8 in
  let modes =
    [
      ("base", Tashkent.Types.Base);
      ("tashkent-mw", Tashkent.Types.Tashkent_mw);
      ("tashkent-api", Tashkent.Types.Tashkent_api);
    ]
  in
  let results =
    List.map
      (fun (name, mode) ->
        let cfg =
          {
            (base_cfg Experiment.Tpc_b Tashkent.Replica.Shared_io) with
            Experiment.system = Experiment.Replicated mode;
            n_replicas = n;
            trace = true;
          }
        in
        (name, Experiment.run cfg))
      modes
  in
  (* One table per mode: every stage the tracer saw, p50/p95/p99 in ms. *)
  List.iter
    (fun (name, r) ->
      Report.subsection (Printf.sprintf "%s: per-stage latency (ms of sim time)" name);
      let t = Report.table ~columns:[ "stage"; "count"; "p50"; "p95"; "p99" ] in
      List.iter
        (fun (stage, (st : Obs.Trace.stage_stats)) ->
          Report.row t
            [
              stage;
              string_of_int st.Obs.Trace.count;
              Report.f1 (st.Obs.Trace.p50_us /. 1000.);
              Report.f1 (st.Obs.Trace.p95_us /. 1000.);
              Report.f1 (st.Obs.Trace.p99_us /. 1000.);
            ];
          List.iter
            (fun (pname, v) ->
              record_metric
                (Printf.sprintf "latency/tpcb/%s/%s/%s" name stage pname)
                v)
            [
              ("p50", st.Obs.Trace.p50_us);
              ("p95", st.Obs.Trace.p95_us);
              ("p99", st.Obs.Trace.p99_us);
            ])
        r.Experiment.stage_latency;
      Report.print t)
    results;
  let p50 name stage =
    match List.assoc_opt stage (List.assoc name results).Experiment.stage_latency with
    | Some (st : Obs.Trace.stage_stats) -> st.Obs.Trace.p50_us /. 1000.
    | None -> nan
  in
  Report.paper_vs
    ~what:"durability stage p50, base vs mw (ms)"
    ~paper:"serial fsync vs in-memory commit"
    ~measured:
      (Printf.sprintf "%.1f vs %.2f" (p50 "base" "durability")
         (p50 "tashkent-mw" "durability"))

(* ------------------------------------------------------------------ *)
(* Chaos: fault-plan runs with their recovery counters. *)

let chaos () =
  Report.section "Chaos: TPC-B under fault plans (crashes, partitions, loss)";
  let plans =
    if !quick then [ ("scripted", Harness.Chaos_exp.Scripted) ]
    else
      [
        ("scripted", Harness.Chaos_exp.Scripted);
        ("random-2", Harness.Chaos_exp.Random 2);
      ]
  in
  List.iter
    (fun (name, plan) ->
      let config = { (Harness.Chaos_exp.default_config ()) with plan } in
      let r = Harness.Chaos_exp.run ~config () in
      Report.kv (name ^ " commits") (string_of_int r.commits);
      Report.kv (name ^ " cert retries") (string_of_int r.cert_retries);
      Report.kv (name ^ " cert failovers") (string_of_int r.cert_failovers);
      Report.kv (name ^ " re-fetches") (string_of_int r.refetches);
      Report.kv (name ^ " crashes/recoveries")
        (Printf.sprintf "%d/%d" r.fault.Fault.crashes r.fault.Fault.recoveries);
      Report.kv (name ^ " violations") (string_of_int (List.length r.violations));
      let m key v = record_metric (Printf.sprintf "chaos/%s/%s" name key) (float_of_int v) in
      m "commits" r.commits;
      m "cert_retries" r.cert_retries;
      m "cert_failovers" r.cert_failovers;
      m "refetches" r.refetches;
      m "crashes" r.fault.Fault.crashes;
      m "recoveries" r.fault.Fault.recoveries;
      m "violations" (List.length r.violations))
    plans

(* ------------------------------------------------------------------ *)
(* Storage chaos: disk-fault plans with the durability invariant. *)

let storage_chaos () =
  Report.section
    "Storage chaos: TPC-B under disk faults (stalls, torn/corrupt WAL tails)";
  let plans =
    if !quick then [ ("scripted-disk", Harness.Chaos_exp.Scripted_disk) ]
    else
      [
        ("scripted-disk", Harness.Chaos_exp.Scripted_disk);
        ("random-disk-7", Harness.Chaos_exp.Random 7);
        ("random-disk-13", Harness.Chaos_exp.Random 13);
      ]
  in
  List.iter
    (fun (name, plan) ->
      let config =
        { (Harness.Chaos_exp.default_config ()) with plan; disk_faults = true }
      in
      let r = Harness.Chaos_exp.run ~config () in
      Report.kv (name ^ " commits") (string_of_int r.commits);
      Report.kv (name ^ " durable acked") (string_of_int r.durable_acked);
      Report.kv (name ^ " torn discarded") (string_of_int r.torn_discarded);
      Report.kv (name ^ " corrupt discarded") (string_of_int r.corrupt_discarded);
      Report.kv (name ^ " stalls injected")
        (string_of_int r.fault.Fault.disk_stalls);
      Report.kv (name ^ " disk failovers") (string_of_int r.disk_failovers);
      Report.kv (name ^ " checks/violations")
        (Printf.sprintf "%d/%d" r.checks (List.length r.violations));
      let m key v =
        record_metric (Printf.sprintf "storage_chaos/%s/%s" name key)
          (float_of_int v)
      in
      m "commits" r.commits;
      m "durable_acked" r.durable_acked;
      m "torn_discarded" r.torn_discarded;
      m "corrupt_discarded" r.corrupt_discarded;
      m "disk_stalls" r.fault.Fault.disk_stalls;
      m "disk_degrades" r.fault.Fault.disk_degrades;
      m "torn_crashes" r.fault.Fault.torn_crashes;
      m "corrupt_tails" r.fault.Fault.corrupt_tails;
      m "disk_failovers" r.disk_failovers;
      m "checks" r.checks;
      m "violations" (List.length r.violations))
    plans

(* ------------------------------------------------------------------ *)
(* Parallel apply: the conflict-aware applier pool (apply_workers knob).
   Base mode on AllUpdates is apply-dominated — every replica re-applies
   every remote writeset with a synchronous commit record. The comparison
   keeps per-writeset transactions ([group_remote_batches = false]; the §3
   batch-merge would collapse each batch into a single transaction, hiding
   the applier entirely), so applier concurrency shows up directly as
   goodput: workers share group-commit fsyncs instead of paying one fsync
   per writeset, and non-conflicting writesets overlap their lock and log
   latencies. *)

let parallel_apply () =
  Report.section "Parallel apply: AllUpdates, 8 replicas, 1 vs 4 applier workers";
  let run workers =
    Experiment.run
      {
        (base_cfg Experiment.All_updates Tashkent.Replica.Shared_io) with
        Experiment.system = Experiment.Replicated Tashkent.Types.Base;
        n_replicas = 8;
        group_remote_batches = false;
        apply_workers = workers;
      }
  in
  let r1 = run 1 in
  let r4 = run 4 in
  Report.kv "goodput, 1 worker" (Report.f1 r1.Experiment.goodput);
  Report.kv "goodput, 4 workers" (Report.f1 r4.Experiment.goodput);
  Report.kv "speedup"
    (Printf.sprintf "%.2fx"
       (if r1.Experiment.goodput <= 0. then 0.
        else r4.Experiment.goodput /. r1.Experiment.goodput));
  Report.kv "mean apply parallelism (4 workers)"
    (Printf.sprintf "%.2f" r4.Experiment.apply_parallelism);
  Report.kv "apply stalls (conflicting items, 4 workers)"
    (string_of_int r4.Experiment.apply_stalls);
  record_metric "parallel_apply/goodput_w1" r1.Experiment.goodput;
  record_metric "parallel_apply/goodput_w4" r4.Experiment.goodput;
  record_metric "parallel_apply/mean_parallelism_w4" r4.Experiment.apply_parallelism;
  record_metric "parallel_apply/apply_stalls_w4"
    (float_of_int r4.Experiment.apply_stalls)

(* ------------------------------------------------------------------ *)
(* Hotkey: Zipfian hot-row contention, blind read-modify-write vs
   commutative deltas. Deltas turn the hot rows' write-write overlaps
   into certification fast-path passes, so the abort rate collapses and
   certified goodput rises — most visibly at 8 replicas, where the
   certifier sees eight replicas' worth of overlapping hot-row writes. *)

let hotkey () =
  Report.section
    "Hotkey: Zipfian hot rows (theta=0.99), blind writes vs commutative deltas";
  let run ~n ~deltas =
    Experiment.run
      {
        (base_cfg Experiment.Hotkey Tashkent.Replica.Shared_io) with
        Experiment.system = Experiment.Replicated Tashkent.Types.Tashkent_mw;
        n_replicas = n;
        deltas;
      }
  in
  let t =
    Report.table
      ~columns:[ "replicas"; "variant"; "goodput"; "abort rate"; "resp (ms)" ]
  in
  let variant_name deltas = if deltas then "delta" else "blind" in
  let results =
    List.concat_map
      (fun n ->
        List.map
          (fun deltas ->
            let r = run ~n ~deltas in
            Report.row t
              [
                string_of_int n;
                variant_name deltas;
                Report.f1 r.Experiment.goodput;
                Report.pct r.Experiment.abort_rate_measured;
                Report.f1 r.Experiment.resp_ms;
              ];
            ((n, deltas), r))
          [ false; true ])
      [ 1; 8 ]
  in
  Report.print t;
  let get n deltas : Experiment.result = List.assoc (n, deltas) results in
  List.iter
    (fun n ->
      List.iter
        (fun deltas ->
          let r = get n deltas in
          let v = variant_name deltas in
          record_metric
            (Printf.sprintf "hotkey/abort_rate_%s_r%d" v n)
            r.Experiment.abort_rate_measured;
          record_metric
            (Printf.sprintf "hotkey/goodput_%s_r%d" v n)
            r.Experiment.goodput)
        [ false; true ])
    [ 1; 8 ];
  Report.paper_vs ~what:"abort rate at 8 replicas, blind vs delta"
    ~paper:"delta strictly lower"
    ~measured:
      (Printf.sprintf "%s vs %s (%s)"
         (Report.pct (get 8 false).Experiment.abort_rate_measured)
         (Report.pct (get 8 true).Experiment.abort_rate_measured)
         (if
            (get 8 true).Experiment.abort_rate_measured
            < (get 8 false).Experiment.abort_rate_measured
          then "holds"
          else "violated"));
  Report.paper_vs ~what:"goodput at 8 replicas, delta vs blind"
    ~paper:"delta higher"
    ~measured:
      (Printf.sprintf "%.1f vs %.1f (%s)" (get 8 true).Experiment.goodput
         (get 8 false).Experiment.goodput
         (if (get 8 true).Experiment.goodput > (get 8 false).Experiment.goodput
          then "holds"
          else "violated"))

let soak () =
  Report.section
    "Soak: sustained Zipfian delta load under GC watermark, periodic chaos";
  let config =
    if !quick then
      {
        (Soak_exp.default_config ()) with
        Soak_exp.duration = Sim.Time.sec 150;
        window = Sim.Time.sec 15;
        chaos_period = Sim.Time.sec 45;
      }
    else Soak_exp.default_config ()
  in
  let r = Soak_exp.run ~config () in
  Format.printf "%a@." Soak_exp.pp_result r;
  (* The same early-half vs late-half split the harness asserts on: a
     bounded run keeps the late maxima level with the early ones and the
     p99 median flat. *)
  let measured =
    List.filteri (fun i _ -> i >= config.Soak_exp.warmup_windows) r.Soak_exp.windows
  in
  let n = List.length measured in
  let early = List.filteri (fun i _ -> i < n / 2) measured in
  let late = List.filteri (fun i _ -> i >= n / 2) measured in
  let maxi f ws = List.fold_left (fun acc w -> max acc (f w)) 0 ws in
  let median xs =
    match List.sort compare xs with
    | [] -> 0.
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  record_metric "soak/commits" (float_of_int r.Soak_exp.commits);
  record_metric "soak/store_versions_early_max"
    (float_of_int (maxi (fun (w : Soak_exp.window_sample) -> w.store_versions) early));
  record_metric "soak/store_versions_late_max"
    (float_of_int (maxi (fun (w : Soak_exp.window_sample) -> w.store_versions) late));
  record_metric "soak/cert_bytes_early_max"
    (float_of_int (maxi (fun (w : Soak_exp.window_sample) -> w.cert_bytes) early));
  record_metric "soak/cert_bytes_late_max"
    (float_of_int (maxi (fun (w : Soak_exp.window_sample) -> w.cert_bytes) late));
  record_metric "soak/p99_ms_early_median"
    (median (List.map (fun (w : Soak_exp.window_sample) -> w.p99_ms) early));
  record_metric "soak/p99_ms_late_median"
    (median (List.map (fun (w : Soak_exp.window_sample) -> w.p99_ms) late));
  record_metric "soak/store_pruned" (float_of_int r.Soak_exp.store_pruned);
  record_metric "soak/cert_pruned" (float_of_int r.Soak_exp.cert_pruned);
  record_metric "soak/snapshot_installs" (float_of_int r.Soak_exp.snapshot_installs);
  record_metric "soak/floor_heals" (float_of_int r.Soak_exp.floor_heals);
  record_metric "soak/violations" (float_of_int (List.length r.Soak_exp.violations));
  Report.paper_vs ~what:"long-run growth under GC watermark"
    ~paper:"bounded (plateau)"
    ~measured:
      (if r.Soak_exp.violations = [] then "bounded (0 violations)"
       else Printf.sprintf "%d violations" (List.length r.Soak_exp.violations))

(* ------------------------------------------------------------------ *)
(* Partitioned certification: goodput scaling with certifier groups on
   the partition-local workload, the cost of a cross-partition mix, and
   the partitioned chaos smoke (one certifier group crashed mid-run). *)

let partition () =
  Report.section
    "Partitioned certification: sharded certifier groups (partlocal workload)";
  let n = if !quick then 8 else 12 in
  let run ~partitions ~cross_ratio =
    Experiment.run
      {
        (base_cfg Experiment.Part_local Tashkent.Replica.Shared_io) with
        Experiment.system = Experiment.Replicated Tashkent.Types.Tashkent_mw;
        n_replicas = n;
        n_partitions = partitions;
        cross_ratio;
      }
  in
  (* The scaling claim needs the sharded components on the critical path:
     partial replication (Host_modulo) so the apply stream shards along
     with certification, an inflated certify cost standing in for the
     saturated-certifier regime of the paper (large writesets), a light
     execution cost (client execution is NOT sharded by partitioning), and
     enough closed-loop clients to keep 4 groups busy. *)
  let run_scaling ~partitions =
    Experiment.run
      {
        (base_cfg Experiment.Part_local Tashkent.Replica.Shared_io) with
        Experiment.system = Experiment.Replicated Tashkent.Types.Tashkent_mw;
        n_replicas = n;
        n_partitions = partitions;
        hosting = Tashkent.Cluster.Host_modulo;
        clients_per_replica = Some 80;
        certify_cpu = Some (Sim.Time.us 300);
        part_exec_cpu = Some (Sim.Time.us 150);
      }
  in
  Report.subsection
    (Printf.sprintf
       "scaling: certification-bound regime, partial replication \
        (Host_modulo), %d replicas"
       n);
  let t =
    Report.table
      ~columns:
        [ "partitions"; "goodput"; "resp (ms)"; "p99 (ms)"; "abort rate"; "cert cpu" ]
  in
  let scaling =
    List.map
      (fun p ->
        let r = run_scaling ~partitions:p in
        Report.row t
          [
            string_of_int p;
            Report.f1 r.Experiment.goodput;
            Report.f1 r.Experiment.resp_ms;
            Report.f1 r.Experiment.p99_ms;
            Report.pct r.Experiment.abort_rate_measured;
            Report.pct r.Experiment.cert_cpu_util;
          ];
        record_metric
          (Printf.sprintf "partition/local_goodput_p%d" p)
          r.Experiment.goodput;
        (p, r))
      [ 1; 2; 4 ]
  in
  Report.print t;
  let g p = (List.assoc p scaling).Experiment.goodput in
  let scale = if g 1 <= 0. then 0. else g 4 /. g 1 in
  record_metric "partition/local_scaling_p4_over_p1" scale;
  Report.paper_vs ~what:"certified goodput scaling, 1 -> 4 partitions"
    ~paper:"near-linear (>= 3x)"
    ~measured:(Printf.sprintf "%.1fx" scale);
  Report.subsection
    (Printf.sprintf "cross-partition mix at 4 partitions, %d replicas" n);
  let t =
    Report.table
      ~columns:
        [
          "cross-ratio";
          "goodput";
          "cross commits";
          "cross aborts";
          "resp (ms)";
          "p99 (ms)";
        ]
  in
  List.iter
    (fun ratio ->
      let r = run ~partitions:4 ~cross_ratio:ratio in
      Report.row t
        [
          Report.pct ratio;
          Report.f1 r.Experiment.goodput;
          string_of_int r.Experiment.cross_commits;
          string_of_int r.Experiment.cross_aborts;
          Report.f1 r.Experiment.resp_ms;
          Report.f1 r.Experiment.p99_ms;
        ];
      record_metric
        (Printf.sprintf "partition/cross%02d_goodput" (int_of_float (ratio *. 100.)))
        r.Experiment.goodput;
      record_metric
        (Printf.sprintf "partition/cross%02d_commits" (int_of_float (ratio *. 100.)))
        (float_of_int r.Experiment.cross_commits))
    [ 0.1; 0.3 ];
  Report.print t;
  Report.subsection "chaos smoke: one certifier group crashed mid-run";
  List.iter
    (fun seed ->
      let config =
        {
          (Chaos_exp.default_config ()) with
          Chaos_exp.n_partitions = 2;
          seed;
        }
      in
      let r = Chaos_exp.run ~config () in
      Report.kv
        (Printf.sprintf "seed %d commits/cross/violations" seed)
        (Printf.sprintf "%d/%d/%d" r.Chaos_exp.commits r.Chaos_exp.cross_commits
           (List.length r.Chaos_exp.violations));
      let m key v =
        record_metric (Printf.sprintf "partition/chaos_seed%d/%s" seed key)
          (float_of_int v)
      in
      m "commits" r.Chaos_exp.commits;
      m "cross_commits" r.Chaos_exp.cross_commits;
      m "cross_aborts" r.Chaos_exp.cross_aborts;
      m "violations" (List.length r.Chaos_exp.violations))
    [ 1966; 2006 ]

(* ------------------------------------------------------------------ *)
(* Monitor overhead: the five online protocol monitors are pure
   observers on the event stream, so goodput with them attached should
   be indistinguishable from goodput without. CI asserts the measured
   overhead stays under 5%. *)

let monitor_overhead () =
  Report.section
    "Monitor overhead: goodput with online protocol monitors off vs on";
  let run monitors =
    Experiment.run
      {
        (base_cfg Experiment.Tpc_b Tashkent.Replica.Shared_io) with
        Experiment.system = Experiment.Replicated Tashkent.Types.Tashkent_mw;
        n_replicas = (if !quick then 4 else 8);
        monitors;
      }
  in
  let off = run false in
  let on_ = run true in
  let overhead_pct =
    if off.Experiment.goodput <= 0. then 0.
    else 100. *. (1. -. (on_.Experiment.goodput /. off.Experiment.goodput))
  in
  Report.kv "goodput, monitors off" (Report.f1 off.Experiment.goodput);
  Report.kv "goodput, monitors on" (Report.f1 on_.Experiment.goodput);
  Report.kv "monitor events consumed" (string_of_int on_.Experiment.monitor_events);
  Report.kv "monitor violations"
    (string_of_int (List.length on_.Experiment.monitor_violations));
  Report.kv "overhead" (Printf.sprintf "%.1f%%" overhead_pct);
  record_metric "monitor/goodput_off" off.Experiment.goodput;
  record_metric "monitor/goodput_on" on_.Experiment.goodput;
  record_metric "monitor/events" (float_of_int on_.Experiment.monitor_events);
  record_metric "monitor/violations"
    (float_of_int (List.length on_.Experiment.monitor_violations));
  record_metric "monitor/overhead_pct" overhead_pct;
  Report.paper_vs ~what:"monitor goodput overhead" ~paper:"< 5% (pure observers)"
    ~measured:(Printf.sprintf "%.1f%%" overhead_pct)

let () =
  if !list_only then begin
    List.iter print_endline all_sections;
    exit 0
  end;
  List.iter
    (fun bad ->
      if not (List.mem bad all_sections) then begin
        Printf.eprintf "unknown section %S; use --list\n" bad;
        exit 2
      end)
    !only;
  Printf.printf
    "Tashkent reproduction benchmark harness (%s mode, %.0fs windows)\n"
    (if !quick then "quick" else "full")
    (Sim.Time.to_sec (measure ()));
  if wants "fig4" then
    fig_allupdates ~io:Tashkent.Replica.Shared_io ~figt:"4" ~figr:"5"
      ~paper_factors:("5.0x", "3.0x") ();
  if wants "fig6" then
    fig_allupdates ~io:Tashkent.Replica.Dedicated_io ~figt:"6" ~figr:"7"
      ~paper_factors:("5.0x", "3.2x") ();
  if wants "fig8" then fig_tpcb ~io:Tashkent.Replica.Shared_io ~figt:"8" ~figr:"9" ();
  if wants "fig10" then fig_tpcb ~io:Tashkent.Replica.Dedicated_io ~figt:"10" ~figr:"11" ();
  if wants "fig12" then fig_tpcw ();
  if wants "fig14" then fig14 ();
  if wants "standalone" then standalone ();
  if wants "recovery" then recovery ();
  if wants "ablation" then ablation ();
  if wants "micro" then micro ();
  if wants "chaos" then chaos ();
  if wants "storage_chaos" then storage_chaos ();
  if wants "latency" then latency ();
  if wants "parallel_apply" then parallel_apply ();
  if wants "hotkey" then hotkey ();
  if wants "soak" then soak ();
  if wants "partition" then partition ();
  if wants "monitor" then monitor_overhead ();
  if !json_metrics <> [] then write_json ();
  print_newline ()

(* Bank transfers under generalized snapshot isolation: concurrent clients
   on different replicas move money between shared accounts. Conflicting
   concurrent transfers are aborted by certification and retried; the total
   balance is conserved on every replica.

   Run with: dune exec examples/bank_transfers.exe *)

open Sim
open Tashkent

let n_accounts = 16
let initial_balance = 1_000
let account i = Mvcc.Key.make ~table:"account" ~row:(Printf.sprintf "%02d" i)

let () =
  let cluster =
    Cluster.create (Cluster.config ~n_replicas:3 Types.Tashkent_mw)
  in
  let engine = Cluster.engine cluster in
  Cluster.load_all cluster
    (List.init n_accounts (fun i -> (account i, Mvcc.Value.int initial_balance)));
  Cluster.settle cluster;

  let transfers = ref 0 and conflicts = ref 0 in

  (* One client per replica, each doing random transfers with retry. *)
  List.iteri
    (fun ix replica ->
      let proxy = Replica.proxy replica in
      let rng = Rng.create (100 + ix) in
      ignore
        (Engine.spawn engine ~name:(Printf.sprintf "teller%d" ix) (fun () ->
             for _ = 1 to 40 do
               let from_acct = Rng.int rng n_accounts in
               let to_acct = (from_acct + 1 + Rng.int rng (n_accounts - 1)) mod n_accounts in
               let amount = 1 + Rng.int rng 50 in
               (* retry loop: a certification abort means somebody else
                  concurrently touched one of our accounts *)
               let rec attempt tries =
                 if tries < 10 then begin
                   let tx = Proxy.begin_tx proxy in
                   let balance k =
                     match Proxy.read proxy tx k with
                     | Some v -> Mvcc.Value.as_int v
                     | None -> 0
                   in
                   let b_from = balance (account from_acct) in
                   let b_to = balance (account to_acct) in
                   if b_from < amount then Proxy.abort proxy tx
                   else
                     let ok =
                       Proxy.write proxy tx (account from_acct)
                         (Mvcc.Writeset.Update (Mvcc.Value.int (b_from - amount)))
                     in
                     match ok with
                     | Error _ ->
                         incr conflicts;
                         Engine.sleep engine (Time.of_ms 2.);
                         attempt (tries + 1)
                     | Ok () -> (
                         match
                           Proxy.write proxy tx (account to_acct)
                             (Mvcc.Writeset.Update (Mvcc.Value.int (b_to + amount)))
                         with
                         | Error _ ->
                             incr conflicts;
                             Engine.sleep engine (Time.of_ms 2.);
                             attempt (tries + 1)
                         | Ok () -> (
                             match Proxy.commit proxy tx with
                             | Ok () -> incr transfers
                             | Error (Proxy.Cert_abort _) | Error (Proxy.Local_abort _) ->
                                 incr conflicts;
                                 Engine.sleep engine (Time.of_ms 2.);
                                 attempt (tries + 1)))
                 end
               in
               attempt 0;
               Engine.sleep engine (Time.of_ms 10.)
             done)))
    (Cluster.replicas cluster);

  Engine.run ~until:(Time.sec 30) engine;

  Printf.printf "transfers committed: %d, conflicts retried: %d\n" !transfers !conflicts;
  (* Conservation: on every replica the money supply is unchanged. *)
  List.iter
    (fun r ->
      let total =
        List.fold_left
          (fun acc i ->
            match Mvcc.Db.read_committed (Replica.db r) (account i) with
            | Some v -> acc + Mvcc.Value.as_int v
            | None -> acc)
          0
          (List.init n_accounts Fun.id)
      in
      Printf.printf "%s: total balance = %d (expected %d) %s\n" (Replica.name r) total
        (n_accounts * initial_balance)
        (if total = n_accounts * initial_balance then "OK" else "BROKEN"))
    (Cluster.replicas cluster);
  match Cluster.check_consistency cluster with
  | Ok () -> print_endline "consistency check passed"
  | Error msg -> Printf.printf "CONSISTENCY VIOLATION: %s\n" msg

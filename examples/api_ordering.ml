(* The COMMIT n database extension in isolation (paper §5.2, §8.3).

   Demonstrates, against a single Mvcc.Db instance:
   1. concurrent ordered commits grouped into one disk write, announced in
      the prescribed global order;
   2. the paper's example (§3): remote batches T1_2_3, T4, T5_6_7_8, T9
      committing with four transactions but one fsync;
   3. an artificial conflict (§5.2.1): conflicting remote writesets must be
      submitted serially, costing a second fsync.

   Run with: dune exec examples/api_ordering.exe *)

open Sim

let key row = Mvcc.Key.make ~table:"t" ~row
let upd n = Mvcc.Writeset.Update (Mvcc.Value.int n)

let make_db () =
  let engine = Engine.create () in
  let rng = Rng.create 2006 in
  let disk = Storage.Disk.create engine ~rng:(Rng.split rng) () in
  let db = Mvcc.Db.create engine ~rng:(Rng.split rng) ~log_disk:disk () in
  Mvcc.Db.load db (List.init 10 (fun i -> (key (string_of_int i), Mvcc.Value.int 0)));
  (engine, db, disk)

let () =
  (* --- The §3 example: versions 1..9 in four ordered transactions. --- *)
  let engine, db, disk = make_db () in
  let submit name version order ws =
    ignore
      (Engine.spawn engine (fun () ->
           match Mvcc.Db.apply_writeset db ~version ~order ws with
           | Ok () ->
               Printf.printf "[%s] %-8s announced as version %d\n"
                 (Time.to_string (Engine.now engine)) name version
           | Error e -> Format.printf "%s failed: %a@." name Mvcc.Db.pp_abort_reason e))
  in
  (* Submitted deliberately out of order; the announce sequence fixes it. *)
  submit "T9" 9 4 (Mvcc.Writeset.singleton (key "9") (upd 9));
  submit "T5_6_7_8" 8 3
    (Mvcc.Writeset.of_list
       [ (key "5", upd 5); (key "6", upd 6); (key "7", upd 7); (key "8", upd 8) ]);
  submit "T4" 4 2 (Mvcc.Writeset.singleton (key "4") (upd 4));
  submit "T1_2_3" 3 1
    (Mvcc.Writeset.of_list [ (key "1", upd 1); (key "2", upd 2); (key "3", upd 3) ]);
  Engine.run engine;
  Printf.printf "four ordered transactions -> %d fsync(s); database at version %d\n\n"
    (Storage.Disk.fsyncs disk)
    (Mvcc.Db.current_version db);

  (* --- Artificial conflict: two remote writesets touch key "x". --- *)
  let engine, db, disk = make_db () in
  Mvcc.Db.load db [ (Mvcc.Key.make ~table:"t" ~row:"x", Mvcc.Value.int 0) ];
  let x = Mvcc.Key.make ~table:"t" ~row:"x" in
  let done1 = Ivar.create engine () in
  ignore
    (Engine.spawn engine (fun () ->
         (match Mvcc.Db.apply_writeset db ~version:1 ~order:1 (Mvcc.Writeset.singleton x (upd 17)) with
         | Ok () -> Printf.printf "[%s] W1 (x=17) committed\n" (Time.to_string (Engine.now engine))
         | Error _ -> ());
         Ivar.fill done1 ()));
  ignore
    (Engine.spawn engine (fun () ->
         (* The proxy detected the conflict, so it waits for W1 before
            submitting W2 — the serialisation that costs a second fsync. *)
         Ivar.read done1;
         match Mvcc.Db.apply_writeset db ~version:2 ~order:2 (Mvcc.Writeset.singleton x (upd 39)) with
         | Ok () -> Printf.printf "[%s] W2 (x=39) committed after W1\n" (Time.to_string (Engine.now engine))
         | Error _ -> ()));
  Engine.run engine;
  Printf.printf "conflicting writesets serialised -> %d fsyncs; x = %d\n"
    (Storage.Disk.fsyncs disk)
    (match Mvcc.Db.read_committed db x with Some v -> Mvcc.Value.as_int v | None -> -1);

  (* --- Abuse: COMMIT 9 with no COMMIT 1..8 wedges (§5.2). --- *)
  let engine, db, _ = make_db () in
  let reached = ref false in
  ignore
    (Engine.spawn engine (fun () ->
         match
           Mvcc.Db.apply_writeset db ~version:9 ~order:9
             (Mvcc.Writeset.singleton (key "1") (upd 1))
         with
         | Ok () | Error _ -> reached := true));
  Engine.run ~until:(Time.sec 60) engine;
  Printf.printf "\nabusing the interface (COMMIT 9 without 1..8): %s\n"
    (if !reached then "committed (unexpected!)" else "blocked forever, as the paper warns");

  (* --- Parallel apply: out-of-order finish, in-order publish. ---
     The parallel variants install each writeset as soon as its own locks
     and disk work allow (here: version 2 finishes before version 1, since
     they touch different keys), while the visible snapshot version only
     advances through the contiguous prefix of announce orders. *)
  let engine, db, disk = make_db () in
  ignore
    (Engine.spawn engine (fun () ->
         (* Hold version 1 back a little so version 2's worker finishes first. *)
         Engine.sleep engine (Time.of_ms 30.);
         match Mvcc.Db.apply_writeset_parallel db ~version:1 ~order:1
                 (Mvcc.Writeset.singleton (key "1") (upd 1)) with
         | Ok () ->
             Printf.printf "[%s] version 1 finished; visible version now %d\n"
               (Time.to_string (Engine.now engine)) (Mvcc.Db.current_version db)
         | Error _ -> ()));
  ignore
    (Engine.spawn engine (fun () ->
         match Mvcc.Db.apply_writeset_parallel db ~version:2 ~order:2
                 (Mvcc.Writeset.singleton (key "2") (upd 2)) with
         | Ok () ->
             Printf.printf "[%s] version 2 finished first; visible version still %d\n"
               (Time.to_string (Engine.now engine)) (Mvcc.Db.current_version db)
         | Error _ -> ()));
  Engine.run engine;
  Printf.printf
    "parallel apply -> %d fsync(s); published version %d only once the prefix closed\n"
    (Storage.Disk.fsyncs disk) (Mvcc.Db.current_version db)

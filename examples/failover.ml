(* Fault tolerance end to end: crash the certifier leader mid-run (Paxos
   elects a new one, proxies retry), then crash a database replica and
   recover it (restore + writeset replay). No committed transaction is
   lost at any point.

   Run with: dune exec examples/failover.exe *)

open Sim
open Tashkent

let key i = Mvcc.Key.make ~table:"kv" ~row:(string_of_int i)

let () =
  let replica_cfg =
    {
      (Replica.default_config Types.Tashkent_mw) with
      Replica.mw_recovery = Replica.Dump_based { interval = Time.sec 5 };
      db_size_bytes = 2_000_000;
    }
  in
  let cluster =
    Cluster.create (Cluster.config ~n_replicas:3 ~replica:replica_cfg Types.Tashkent_mw)
  in
  let engine = Cluster.engine cluster in
  Cluster.load_all cluster (List.init 32 (fun i -> (key i, Mvcc.Value.int 0)));
  Cluster.settle cluster;

  let committed = ref 0 and failed = ref 0 in
  (* Steady trickle of updates on replicas 1 and 2 (replica 0 will crash). *)
  List.iteri
    (fun ix replica ->
      let proxy = Replica.proxy replica in
      let rng = Rng.create (7 + ix) in
      ignore
        (Engine.spawn engine (fun () ->
             let rec loop n =
               if n < 500 then begin
                 Engine.sleep engine (Time.of_ms 40.);
                 let tx = Proxy.begin_tx proxy in
                 (match
                    Proxy.write proxy tx
                      (key (Rng.int rng 32))
                      (Mvcc.Writeset.Update (Mvcc.Value.int n))
                  with
                 | Ok () -> (
                     match Proxy.commit proxy tx with
                     | Ok () -> incr committed
                     | Error _ -> incr failed)
                 | Error _ -> incr failed);
                 loop (n + 1)
               end
             in
             loop 0)))
    [ Cluster.replica cluster 1; Cluster.replica cluster 2 ];

  (* t=3s: kill the certifier leader. *)
  Engine.schedule engine ~at:(Time.sec 3) (fun () ->
      match Cluster.leader cluster with
      | Some leader ->
          Printf.printf "[%s] crashing certifier leader %s\n"
            (Time.to_string (Engine.now engine))
            (Certifier.id leader);
          Certifier.crash leader
      | None -> ());

  (* t=8s: a new leader exists; report it. *)
  Engine.schedule engine ~at:(Time.sec 8) (fun () ->
      match Cluster.leader cluster with
      | Some leader ->
          Printf.printf "[%s] new certifier leader: %s (commits continued: %d)\n"
            (Time.to_string (Engine.now engine))
            (Certifier.id leader) !committed
      | None -> print_endline "no leader yet!");

  (* t=10s: crash replica 0 (idle but receiving writesets). *)
  let r0 = Cluster.replica cluster 0 in
  Engine.schedule engine ~at:(Time.sec 10) (fun () ->
      Printf.printf "[%s] crashing %s (version %d)\n"
        (Time.to_string (Engine.now engine))
        (Replica.name r0)
        (Mvcc.Db.current_version (Replica.db r0));
      Replica.crash r0);

  (* t=14s: recover it — restore from the periodic dump, then replay the
     writesets it missed from the certifier log. *)
  Engine.schedule engine ~at:(Time.sec 14) (fun () ->
      ignore
        (Engine.spawn engine (fun () ->
             let report = Replica.recover r0 in
             Printf.printf
               "[%s] %s recovered: restored v%d, replayed %d writesets, now v%d (%.2fs)\n"
               (Time.to_string (Engine.now engine))
               (Replica.name r0) report.Replica.restored_version
               report.writesets_replayed report.final_version
               (Time.to_sec report.took))));

  Engine.run ~until:(Time.sec 40) engine;

  Printf.printf "\ncommitted %d update transactions (%d failed attempts)\n" !committed !failed;
  List.iter
    (fun r ->
      Printf.printf "%s at version %d (up=%b)\n" (Replica.name r)
        (Mvcc.Db.current_version (Replica.db r))
        (Replica.is_up r))
    (Cluster.replicas cluster);
  match Cluster.check_consistency cluster with
  | Ok () -> print_endline "safety: every replica is a consistent prefix; nothing lost"
  | Error msg -> Printf.printf "CONSISTENCY VIOLATION: %s\n" msg

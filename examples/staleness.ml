(* Generalized snapshot isolation in action (paper §2, §6.2).

   A replica that receives no update transactions serves slightly stale —
   but always consistent — snapshots, and never blocks readers. The
   bounded-staleness refresher caps how far behind it can fall.

   Run with: dune exec examples/staleness.exe *)

open Sim
open Tashkent

let key row = Mvcc.Key.make ~table:"kv" ~row

let () =
  let replica_cfg =
    {
      (Replica.default_config Types.Tashkent_mw) with
      Replica.staleness_bound = Some (Time.of_ms 800.);
    }
  in
  let cluster =
    Cluster.create (Cluster.config ~n_replicas:2 ~replica:replica_cfg Types.Tashkent_mw)
  in
  let engine = Cluster.engine cluster in
  Cluster.load_all cluster [ (key "ticker", Mvcc.Value.int 0) ];
  Cluster.settle cluster;

  let writer = Replica.proxy (Cluster.replica cluster 0) in
  let reader_replica = Cluster.replica cluster 1 in
  let reader = Replica.proxy reader_replica in

  (* Replica 0: bump the ticker every 100 ms. *)
  ignore
    (Engine.spawn engine ~name:"writer" (fun () ->
         for i = 1 to 100 do
           let tx = Proxy.begin_tx writer in
           ignore (Proxy.write writer tx (key "ticker") (Mvcc.Writeset.Update (Mvcc.Value.int i)));
           ignore (Proxy.commit writer tx);
           Engine.sleep engine (Time.of_ms 100.)
         done));

  (* Replica 1: pure reader. Its snapshots lag but are never inconsistent,
     and reads never block — the core GSI property. *)
  ignore
    (Engine.spawn engine ~name:"reader" (fun () ->
         for _ = 1 to 10 do
           Engine.sleep engine (Time.sec 1);
           let started = Engine.now engine in
           let tx = Proxy.begin_tx reader in
           let v =
             match Proxy.read reader tx (key "ticker") with
             | Some v -> Mvcc.Value.as_int v
             | None -> -1
           in
           (match Proxy.commit reader tx with Ok () -> () | Error _ -> assert false);
           let took = Time.diff (Engine.now engine) started in
           let writer_v = Proxy.replica_version writer in
           Printf.printf
             "[%5s] reader sees ticker=%3d (writer is at version %3d, lag %d) — read took %s\n"
             (Time.to_string (Engine.now engine))
             v writer_v (writer_v - v) (Time.to_string took)
         done));

  Engine.run ~until:(Time.sec 11) engine;
  print_newline ();
  Printf.printf "reader replica used %d staleness fetches; final version %d\n"
    (Proxy.stats reader).Proxy.refreshes
    (Mvcc.Db.current_version (Replica.db reader_replica));
  match Cluster.check_consistency cluster with
  | Ok () -> print_endline "every snapshot the reader saw was a real global snapshot"
  | Error msg -> Printf.printf "CONSISTENCY VIOLATION: %s\n" msg

(* Quickstart: bring up a 3-replica Tashkent-MW cluster, run transactions
   through the proxy's client interface, and watch replication happen.

   Run with: dune exec examples/quickstart.exe *)

open Sim
open Tashkent

let key row = Mvcc.Key.make ~table:"kv" ~row
let set n = Mvcc.Writeset.Update (Mvcc.Value.int n)

let () =
  (* A cluster is a certifier group (Paxos-replicated, 3 nodes) plus any
     number of database replicas, all on a simulated LAN. [Cluster.config]
     is the smart constructor: pass only the knobs you care about. *)
  let cluster = Cluster.create (Cluster.config Types.Tashkent_mw) in
  let engine = Cluster.engine cluster in

  (* Populate the same initial rows on every replica (version 0). *)
  Cluster.load_all cluster [ (key "x", Mvcc.Value.int 0); (key "y", Mvcc.Value.int 0) ];

  (* Wait for the certifier group to elect a leader. *)
  Cluster.settle cluster;
  Printf.printf "certifier leader: %s\n"
    (match Cluster.leader cluster with Some c -> Certifier.id c | None -> "?");

  (* A client session against replica 0: read-modify-write x. *)
  let proxy0 = Replica.proxy (Cluster.replica cluster 0) in
  let proxy1 = Replica.proxy (Cluster.replica cluster 1) in
  ignore
    (Engine.spawn engine (fun () ->
         let tx = Proxy.begin_tx proxy0 in
         let x = Proxy.read proxy0 tx (key "x") in
         Printf.printf "[%s] replica0 reads x = %s\n"
           (Time.to_string (Engine.now engine))
           (match x with Some v -> string_of_int (Mvcc.Value.as_int v) | None -> "-");
         (match Proxy.write proxy0 tx (key "x") (set 41) with
         | Ok () -> ()
         | Error f -> Format.printf "write failed: %a@." Proxy.pp_failure f);
         match Proxy.commit proxy0 tx with
         | Ok () ->
             Printf.printf "[%s] replica0 committed x := 41 (version %d)\n"
               (Time.to_string (Engine.now engine))
               (Proxy.replica_version proxy0)
         | Error f -> Format.printf "commit failed: %a@." Proxy.pp_failure f));

  (* A second, later transaction on another replica sees the first one's
     effect once the writeset has propagated. *)
  Engine.schedule engine ~at:(Time.sec 12) (fun () ->
      ignore
        (Engine.spawn engine (fun () ->
             let tx = Proxy.begin_tx proxy1 in
             let x = Proxy.read proxy1 tx (key "x") in
             Printf.printf "[%s] replica1 reads x = %s (propagated writeset)\n"
               (Time.to_string (Engine.now engine))
               (match x with Some v -> string_of_int (Mvcc.Value.as_int v) | None -> "-");
             (* read-only transactions never block and commit locally *)
             (match Proxy.commit proxy1 tx with
             | Ok () -> print_endline "read-only transaction committed locally"
             | Error _ -> assert false);
             (* and an update based on it *)
             let tx2 = Proxy.begin_tx proxy1 in
             (match Proxy.read proxy1 tx2 (key "x") with
             | Some v ->
                 ignore (Proxy.write proxy1 tx2 (key "x") (set (Mvcc.Value.as_int v + 1)))
             | None -> ());
             match Proxy.commit proxy1 tx2 with
             | Ok () -> print_endline "replica1 committed x := x + 1"
             | Error f -> Format.printf "commit failed: %a@." Proxy.pp_failure f)));

  (* Drive the simulation. *)
  Engine.run ~until:(Time.sec 20) engine;

  (* Every replica converges to the same state (bounded staleness pulls
     idle replicas along). *)
  print_newline ();
  List.iter
    (fun r ->
      let v k =
        match Mvcc.Db.read_committed (Replica.db r) (key k) with
        | Some v -> Mvcc.Value.as_int v
        | None -> -1
      in
      Printf.printf "%s: x=%d (version %d)\n" (Replica.name r) (v "x")
        (Mvcc.Db.current_version (Replica.db r)))
    (Cluster.replicas cluster);
  match Cluster.check_consistency cluster with
  | Ok () -> print_endline "consistency check: every replica is a prefix of the global history"
  | Error msg -> Printf.printf "CONSISTENCY VIOLATION: %s\n" msg
